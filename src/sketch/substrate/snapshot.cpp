#include "sketch/substrate/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/fault_injection.hpp"

namespace covstream {
namespace {

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kChecksumBytes = 8;
constexpr std::size_t kSectionHeaderBytes = 12;  // u32 tag + u64 length

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::uint64_t snapshot_checksum(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

// ------------------------------------------------------------------ writer ----

void SnapshotWriter::begin_section(std::uint32_t tag) {
  u32(tag);
  open_sections_.push_back(payload_.size());
  u64(0);  // length, patched by end_section()
}

void SnapshotWriter::end_section() {
  COVSTREAM_CHECK(!open_sections_.empty());
  const std::size_t at = open_sections_.back();
  open_sections_.pop_back();
  const std::uint64_t length = payload_.size() - (at + sizeof(std::uint64_t));
  std::memcpy(payload_.data() + at, &length, sizeof length);
}

std::vector<std::uint8_t> SnapshotWriter::finish() const {
  COVSTREAM_CHECK(open_sections_.empty());
  std::vector<std::uint8_t> image(kHeaderBytes + payload_.size() +
                                  kChecksumBytes);
  const auto put_u32 = [&image](std::size_t at, std::uint32_t v) {
    std::memcpy(image.data() + at, &v, sizeof v);
  };
  const auto put_u64 = [&image](std::size_t at, std::uint64_t v) {
    std::memcpy(image.data() + at, &v, sizeof v);
  };
  std::memcpy(image.data(), kSnapshotMagic, sizeof kSnapshotMagic);
  put_u32(8, kSnapshotVersion);
  put_u32(12, kSnapshotEndianMarker);
  put_u32(16, static_cast<std::uint32_t>(type_));
  put_u32(20, 0);  // reserved
  put_u64(24, payload_.size());
  if (!payload_.empty()) {
    std::memcpy(image.data() + kHeaderBytes, payload_.data(), payload_.size());
  }
  put_u64(kHeaderBytes + payload_.size(),
          snapshot_checksum(std::span<const std::uint8_t>(
              image.data(), kHeaderBytes + payload_.size())));
  return image;
}

bool SnapshotWriter::write_file(const std::string& path,
                                std::string* error) const {
  const std::vector<std::uint8_t> image = finish();
  // Unique temp name per write: concurrent writers to one destination (the
  // serve REPL's `save` racing a periodic checkpoint) must not truncate
  // each other's half-written temp and publish a torn image — whichever
  // rename lands last must still be a complete snapshot.
  static std::atomic<unsigned> temp_counter{0};
  const std::string temp =
      path + ".tmp." + std::to_string(temp_counter.fetch_add(1)) + "." +
      std::to_string(static_cast<unsigned long>(
#if defined(__unix__) || defined(__APPLE__)
          ::getpid()
#else
          0
#endif
          ));
  FaultInjector& faults = FaultInjector::instance();
  const auto set_error = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  if (faults.evaluate("snapshot.open").action != FaultAction::kNone) {
    return set_error("cannot open " + temp + " for writing");
  }
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    return set_error("cannot open " + temp + " for writing");
  }
  // Unbuffered, chunked writes: every chunk is one write(2), so an
  // `abort`-at-Nth-write failpoint leaves exactly the first N-1 chunks on
  // disk — a genuinely torn temp file, which the reboot sweep must handle.
  std::setvbuf(file, nullptr, _IONBF, 0);
  constexpr std::size_t kChunkBytes = 4096;
  bool wrote = true;
  int write_errno = 0;
  for (std::size_t at = 0; at < image.size(); at += kChunkBytes) {
    const std::size_t len = std::min(kChunkBytes, image.size() - at);
    const FaultHit hit = faults.evaluate("snapshot.write");
    if (hit.action != FaultAction::kNone) {
      // A short write lands part of the chunk before failing, like a disk
      // that filled mid-write; `fail`/`enospc` land nothing.
      if (hit.action == FaultAction::kShort && len > 1) {
        (void)std::fwrite(image.data() + at, 1, len / 2, file);
      }
      wrote = false;
      write_errno = hit.fault_errno;
      break;
    }
    if (std::fwrite(image.data() + at, 1, len, file) != len) {
      wrote = false;
      write_errno = errno;
      break;
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // The data must be durable BEFORE the rename publishes it, or a power
  // loss can commit the rename metadata ahead of the data blocks and leave
  // a torn file at `path` — the exact crash checkpoints exist to survive.
  if (wrote) {
    if (faults.evaluate("snapshot.fsync").action != FaultAction::kNone) {
      wrote = false;
      write_errno = EIO;
    } else {
      wrote = std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
      if (!wrote) write_errno = errno;
    }
  }
#endif
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    // Never leak the temp: a failed write must leave the spill dir exactly
    // as it was (tests pin this; the boot scan sweeps crash leftovers).
    std::remove(temp.c_str());
    std::string detail =
        write_errno != 0 ? std::string(std::strerror(write_errno)) : "";
    return set_error("short write to " + temp +
                     (detail.empty() ? "" : " (" + detail + ")"));
  }
  if (faults.evaluate("snapshot.rename").action != FaultAction::kNone ||
      std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return set_error("cannot rename " + temp + " to " + path);
  }
#if defined(__unix__)
  // Persist the rename itself (directory entry). A failure here leaves a
  // valid file at `path` that may revert to the previous snapshot after a
  // power loss, so it is reported as a failure — callers that must be
  // durable (fleet flush) retry; callers that can tolerate a rollback see
  // exactly what happened in the error string.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  bool dir_synced = false;
  if (faults.evaluate("snapshot.dirsync").action == FaultAction::kNone) {
    const int dir_fd = ::open(dir.c_str(), O_RDONLY);
    if (dir_fd >= 0) {
      dir_synced = ::fsync(dir_fd) == 0;
      ::close(dir_fd);
    }
  }
  if (!dir_synced) {
    return set_error("directory fsync failed for " + dir + " (" + path +
                     " was renamed into place but the rename may not survive "
                     "a power loss)");
  }
#endif
  return true;
}

// ------------------------------------------------------------------ reader ----

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> image)
    : image_(std::move(image)) {
  if (image_.size() < kHeaderBytes + kChecksumBytes) {
    fail("snapshot truncated: shorter than header + checksum");
    return;
  }
  if (std::memcmp(image_.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    fail("bad magic: not a covstream snapshot");
    return;
  }
  const std::uint32_t version = read_u32(image_.data() + 8);
  if (version != kSnapshotVersion) {
    fail("unsupported snapshot version " + std::to_string(version) +
         " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
    return;
  }
  if (read_u32(image_.data() + 12) != kSnapshotEndianMarker) {
    fail("endianness mismatch: snapshot written on an incompatible host");
    return;
  }
  type_ = static_cast<SnapshotType>(read_u32(image_.data() + 16));
  const std::uint64_t payload_len = read_u64(image_.data() + 24);
  if (payload_len != image_.size() - kHeaderBytes - kChecksumBytes) {
    fail("snapshot truncated: payload length does not match file size");
    return;
  }
  const std::uint64_t stored =
      read_u64(image_.data() + image_.size() - kChecksumBytes);
  const std::uint64_t computed = snapshot_checksum(
      std::span<const std::uint8_t>(image_.data(), image_.size() - kChecksumBytes));
  if (stored != computed) {
    fail("checksum mismatch: snapshot corrupted");
    return;
  }
  cursor_ = kHeaderBytes;
  limit_ = image_.size() - kChecksumBytes;
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::vector<std::uint8_t> image;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file != nullptr) {
    std::uint8_t block[1 << 16];
    for (;;) {
      const std::size_t got = std::fread(block, 1, sizeof block, file);
      if (got == 0) break;
      image.insert(image.end(), block, block + got);
    }
    std::fclose(file);
    return SnapshotReader(std::move(image));
  }
  SnapshotReader reader(std::move(image));
  reader.error_ = "cannot open snapshot " + path;
  return reader;
}

bool SnapshotReader::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
  cursor_ = limit_;  // poison: no further reads
  return false;
}

bool SnapshotReader::need(std::size_t len) {
  if (!ok()) return false;
  const std::size_t scope =
      section_limits_.empty() ? limit_ : section_limits_.back();
  if (cursor_ + len > scope) {
    return fail("snapshot truncated: read past " +
                std::string(section_limits_.empty() ? "payload" : "section") +
                " end");
  }
  return true;
}

std::uint8_t SnapshotReader::u8() {
  if (!need(1)) return 0;
  return image_[cursor_++];
}

std::uint32_t SnapshotReader::u32() {
  if (!need(4)) return 0;
  const std::uint32_t v = read_u32(image_.data() + cursor_);
  cursor_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  if (!need(8)) return 0;
  const std::uint64_t v = read_u64(image_.data() + cursor_);
  cursor_ += 8;
  return v;
}

bool SnapshotReader::bytes(void* out, std::size_t len) {
  if (!need(len)) return false;
  // len == 0 short-circuits: `out` may be a null data() pointer from an
  // empty vector, and memcpy's arguments are declared nonnull even for a
  // zero count (an empty tenant sketch snapshots empty arrays).
  if (len > 0) std::memcpy(out, image_.data() + cursor_, len);
  cursor_ += len;
  return true;
}

template <typename T>
static bool read_array(SnapshotReader& reader, std::vector<T>& out,
                       std::uint64_t max_count) {
  const std::uint64_t count = reader.u64();
  if (!reader.ok()) return false;
  // Check the implied byte length against the remaining scope BEFORE
  // resizing (division, so a forged count can neither overflow the
  // multiplication nor provoke a terabyte allocation), then the caller's
  // semantic bound.
  if (count > reader.remaining() / sizeof(T)) {
    return reader.fail("array count " + std::to_string(count) +
                       " overruns the section payload");
  }
  if (count > max_count) {
    return reader.fail("array count " + std::to_string(count) +
                       " exceeds bound " + std::to_string(max_count));
  }
  out.resize(static_cast<std::size_t>(count));
  return reader.bytes(out.data(), out.size() * sizeof(T));
}

bool SnapshotReader::u32_array(std::vector<std::uint32_t>& out,
                               std::uint64_t max_count) {
  return read_array(*this, out, max_count);
}

bool SnapshotReader::u64_array(std::vector<std::uint64_t>& out,
                               std::uint64_t max_count) {
  return read_array(*this, out, max_count);
}

bool SnapshotReader::f64_array(std::vector<double>& out,
                               std::uint64_t max_count) {
  return read_array(*this, out, max_count);
}

bool SnapshotReader::begin_section(std::uint32_t expected_tag) {
  if (!need(kSectionHeaderBytes)) return false;
  const std::uint32_t tag = u32();
  const std::uint64_t length = u64();
  if (tag != expected_tag) {
    const char want[5] = {static_cast<char>(expected_tag & 0xFF),
                          static_cast<char>((expected_tag >> 8) & 0xFF),
                          static_cast<char>((expected_tag >> 16) & 0xFF),
                          static_cast<char>((expected_tag >> 24) & 0xFF), '\0'};
    return fail(std::string("section tag mismatch: expected '") + want + "'");
  }
  const std::size_t scope =
      section_limits_.empty() ? limit_ : section_limits_.back();
  if (length > scope - cursor_) {
    return fail("section length overruns its enclosing scope");
  }
  section_limits_.push_back(cursor_ + static_cast<std::size_t>(length));
  return true;
}

bool SnapshotReader::end_section() {
  if (!ok()) return false;
  COVSTREAM_CHECK(!section_limits_.empty());
  const std::size_t expected_end = section_limits_.back();
  section_limits_.pop_back();
  if (cursor_ != expected_end) {
    return fail("section not fully consumed: trailing bytes");
  }
  return true;
}

}  // namespace covstream
