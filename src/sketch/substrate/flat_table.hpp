// Flat open-addressing element index (DESIGN.md §5.6).
//
// Maps ElemId -> slot index for the sketch substrate. Linear probing over
// power-of-two parallel key/slot arrays with backward-shift deletion: no
// tombstones, no per-node allocation, and lookups touch one or two cache
// lines in the common case — the std::unordered_map it replaces chased a
// pointer per find on the per-edge hot path. The SoA split (8-byte keys,
// 4-byte slots) keeps the footprint at a true 12 bytes per bucket; a single
// {ElemId, uint32} struct would pad to 16.
//
// Element ids may be arbitrary 64-bit values (the streaming model's universe
// is unknown), so no key is reserved as an empty marker; emptiness is
// recorded in the 32-bit slot field instead (kNoSlot).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hash/hash64.hpp"
#include "util/common.hpp"
#include "util/space_meter.hpp"

namespace covstream {

class FlatElemTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  FlatElemTable();

  /// Slot stored for `key`, or kNoSlot.
  std::uint32_t find(ElemId key) const;

  /// One-probe upsert: returns the existing slot for `key`, or stores and
  /// returns `slot_if_new`. The bool reports whether an insert happened.
  std::pair<std::uint32_t, bool> find_or_insert(ElemId key,
                                                std::uint32_t slot_if_new);

  /// Inserts a mapping; `key` must not already be present.
  void insert(ElemId key, std::uint32_t slot);

  /// Removes `key` (backward-shift, so probe chains stay dense). Returns
  /// whether the key was present.
  bool erase(ElemId key);

  /// Pre-sizes the bucket arrays for `expected` keys (avoids rehash chains
  /// when the population is known up front).
  void reserve(std::size_t expected);

  std::size_t size() const { return size_; }

  /// 8-byte words held: one ElemId + one uint32 per bucket (12 bytes, and
  /// the parallel-array layout really occupies 12 — no struct padding).
  std::size_t space_words() const { return words_for_buckets(slots_.size()); }

 private:
  std::size_t index_of(ElemId key) const { return mix64(key) & mask_; }
  void grow();
  void maybe_grow() {
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();  // max load 3/4
  }

  std::vector<ElemId> keys_;
  std::vector<std::uint32_t> slots_;  // kNoSlot == empty bucket
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace covstream
