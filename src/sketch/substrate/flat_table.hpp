// Flat open-addressing element index (DESIGN.md §5.6).
//
// Maps ElemId -> slot index for the sketch substrate. Linear probing over a
// power-of-two bucket array with backward-shift deletion: no tombstones, no
// per-node allocation. Buckets are PACKED 12-byte records (8-byte ElemId +
// 4-byte slot) in one byte slab, so the common-case probe touches a single
// cache line — the split key/slot parallel arrays this replaces paid two
// lines per probe, and the std::unordered_map before them chased a pointer
// per find. The packed layout keeps the footprint at a true 12 bytes per
// bucket; a {ElemId, uint32} struct would pad to 16.
//
// Element ids may be arbitrary 64-bit values (the streaming model's universe
// is unknown), so no key is reserved as an empty marker; emptiness is
// recorded in the 32-bit slot field instead (kNoSlot).
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "hash/hash64.hpp"
#include "sketch/substrate/snapshot.hpp"
#include "util/common.hpp"
#include "util/space_meter.hpp"

namespace covstream {

class FlatElemTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  FlatElemTable();

  /// Slot stored for `key`, or kNoSlot.
  std::uint32_t find(ElemId key) const;

  /// The bucket hash behind index_of. Geometry-independent, so batched
  /// callers can precompute it for a whole chunk (it is exactly the SIMD
  /// mix64 sweep with salt 0) and feed the *_hashed entry points — the
  /// probe then never re-derives the hash per edge, and the hint survives
  /// a rehash between computation and use.
  static std::uint64_t bucket_hash(ElemId key) { return mix64(key); }

  /// Hints the cache that the probe bucket for a key hashing to `hash` is
  /// about to be touched. Used by the batched admission path to hide the
  /// table's dependent load latency behind the edges ahead in the chunk.
  /// Purely advisory: a rehash between the hint and the access only wastes
  /// the hint.
  void prefetch_hashed(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(bytes_.data() + (hash & mask_) * kBucketBytes);
#else
    (void)hash;
#endif
  }

  /// prefetch_hashed for callers without a precomputed hash.
  void prefetch(ElemId key) const { prefetch_hashed(bucket_hash(key)); }

  /// One-probe upsert: returns the existing slot for `key`, or stores and
  /// returns `slot_if_new`. The bool reports whether an insert happened.
  std::pair<std::uint32_t, bool> find_or_insert(ElemId key,
                                                std::uint32_t slot_if_new) {
    return find_or_insert_hashed(key, slot_if_new, bucket_hash(key));
  }

  /// find_or_insert with the caller's precomputed bucket_hash(key) — the
  /// batched admission path hashes whole chunks through the SIMD kernels
  /// instead of once per probe.
  std::pair<std::uint32_t, bool> find_or_insert_hashed(ElemId key,
                                                       std::uint32_t slot_if_new,
                                                       std::uint64_t hash);

  /// Inserts a mapping; `key` must not already be present.
  void insert(ElemId key, std::uint32_t slot);

  /// Removes `key` (backward-shift, so probe chains stay dense). Returns
  /// whether the key was present.
  bool erase(ElemId key);

  /// Pre-sizes the bucket array for `expected` keys (avoids rehash chains
  /// when the population is known up front).
  void reserve(std::size_t expected);

  std::size_t size() const { return size_; }

  /// 8-byte words held: one ElemId + one uint32 per bucket (12 bytes, and
  /// the packed record layout really occupies 12 — no struct padding).
  std::size_t space_words() const { return words_for_buckets(buckets_); }

  /// Serializes the table verbatim (bucket count, key count, packed bucket
  /// slab — docs/FORMATS.md §3 'TBLE'). Probe geometry is preserved exactly,
  /// so a loaded table answers find() with the same probes and footprint.
  void save(SnapshotWriter& writer) const;

  /// Restores a save()d table, replacing this one. Validates geometry
  /// (power-of-two bucket count, slab length, occupancy count) and fails the
  /// reader — returning false — rather than accepting an inconsistent table.
  bool load(SnapshotReader& reader);

 private:
  static constexpr std::size_t kBucketBytes = 12;  // 8B ElemId + 4B slot

  std::size_t index_of(ElemId key) const { return mix64(key) & mask_; }

  // Packed-record accessors; memcpy compiles to single aligned-enough loads
  // and stores and sidesteps strict-aliasing concerns.
  ElemId key_at(std::size_t i) const {
    ElemId key;
    std::memcpy(&key, bytes_.data() + i * kBucketBytes, sizeof key);
    return key;
  }
  std::uint32_t slot_at(std::size_t i) const {
    std::uint32_t slot;
    std::memcpy(&slot, bytes_.data() + i * kBucketBytes + 8, sizeof slot);
    return slot;
  }
  void store(std::size_t i, ElemId key, std::uint32_t slot) {
    std::memcpy(bytes_.data() + i * kBucketBytes, &key, sizeof key);
    std::memcpy(bytes_.data() + i * kBucketBytes + 8, &slot, sizeof slot);
  }
  void store_slot(std::size_t i, std::uint32_t slot) {
    std::memcpy(bytes_.data() + i * kBucketBytes + 8, &slot, sizeof slot);
  }

  void grow();

  std::vector<unsigned char> bytes_;  // buckets_ packed 12-byte records
  std::size_t buckets_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace covstream
