#include "sketch/substrate/edge_arena.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace covstream {
namespace {
// First spilled size class: one step past the inline capacity.
constexpr std::uint32_t kFirstSpillLog2 = 2;
}  // namespace

EdgeArena::EdgeArena() {
  std::fill(std::begin(free_head_), std::end(free_head_), kNullOffset);
}

std::uint32_t EdgeArena::allocate(std::uint32_t cap_log2) {
  COVSTREAM_CHECK(cap_log2 <= kMaxClass);
  if (free_head_[cap_log2] != kNullOffset) {
    const std::uint32_t offset = free_head_[cap_log2];
    free_head_[cap_log2] = data_[offset];
    return offset;
  }
  const std::size_t offset = data_.size();
  COVSTREAM_CHECK(offset + (1ull << cap_log2) < kNullOffset);
  data_.resize(offset + (1ull << cap_log2));
  return static_cast<std::uint32_t>(offset);
}

void EdgeArena::spill(Span& span) {
  const std::uint32_t offset = allocate(kFirstSpillLog2);
  data_[offset] = span.words[0];
  data_[offset + 1] = span.words[1];
  span.words[0] = offset;
  span.spilled = 1;
  span.cap_log2 = kFirstSpillLog2;
}

void EdgeArena::grow(Span& span) {
  const std::uint32_t new_log2 = static_cast<std::uint32_t>(span.cap_log2) + 1;
  const std::uint32_t new_offset = allocate(new_log2);
  std::memcpy(data_.data() + new_offset, data_.data() + span.words[0],
              span.size * sizeof(std::uint32_t));
  data_[span.words[0]] = free_head_[span.cap_log2];
  free_head_[span.cap_log2] = span.words[0];
  span.words[0] = new_offset;
  span.cap_log2 = static_cast<std::uint8_t>(new_log2);
}

void EdgeArena::append_spilled(Span& span, SetId value) {
  // The header fast path already handled the inline-with-room case.
  if (!span.spilled) {
    spill(span);
  } else if (span.size == (1u << span.cap_log2)) {
    grow(span);
  }
  data_[span.words[0] + span.size] = value;
  ++span.size;
}

bool EdgeArena::insert_sorted_spilled(Span& span, SetId value) {
  // The header fast path already resolved every inline outcome except a
  // full inline list taking a third distinct set.
  if (!span.spilled) spill(span);
  std::uint32_t* const begin = data_.data() + span.words[0];
  std::uint32_t* const end = begin + span.size;
  std::uint32_t* const pos = std::lower_bound(begin, end, value);
  if (pos != end && *pos == value) return false;
  const std::size_t tail = static_cast<std::size_t>(end - pos);
  if (span.size == (1u << span.cap_log2)) {
    const std::size_t at = static_cast<std::size_t>(pos - begin);
    grow(span);
    std::uint32_t* const moved = data_.data() + span.words[0];
    std::memmove(moved + at + 1, moved + at, tail * sizeof(std::uint32_t));
    moved[at] = value;
  } else {
    std::memmove(pos + 1, pos, tail * sizeof(std::uint32_t));
    *pos = value;
  }
  ++span.size;
  return true;
}

void EdgeArena::assign(Span& span, std::span<const SetId> values) {
  if (values.size() <= Span::kInlineCap) {
    release(span);
    for (std::size_t i = 0; i < values.size(); ++i) {
      span.words[i] = values[i];
    }
    span.size = static_cast<std::uint32_t>(values.size());
    return;
  }
  if (values.size() > span.capacity() || !span.spilled) {
    release(span);
    const std::uint32_t log2 = std::max(
        kFirstSpillLog2,
        static_cast<std::uint32_t>(std::bit_width(values.size() - 1)));
    span.words[0] = allocate(log2);
    span.spilled = 1;
    span.cap_log2 = static_cast<std::uint8_t>(log2);
  }
  std::memcpy(data_.data() + span.words[0], values.data(),
              values.size() * sizeof(std::uint32_t));
  span.size = static_cast<std::uint32_t>(values.size());
}

void EdgeArena::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('A', 'R', 'N', 'A'));
  writer.u32_array(data_);
  for (std::uint32_t c = 0; c <= kMaxClass; ++c) writer.u32(free_head_[c]);
  writer.end_section();
}

bool EdgeArena::load(SnapshotReader& reader, std::vector<bool>* claimed) {
  if (!reader.begin_section(snapshot_tag('A', 'R', 'N', 'A'))) return false;
  std::vector<std::uint32_t> data;
  if (!reader.u32_array(data, kNullOffset)) return false;
  std::uint32_t heads[kMaxClass + 1];
  for (std::uint32_t c = 0; c <= kMaxClass; ++c) heads[c] = reader.u32();
  if (!reader.ok()) return false;
  if (claimed != nullptr) claimed->assign(data.size(), false);
  // Validate every free chain: block offsets in bounds (with room for the
  // whole size-class block), chains acyclic (bounded by the slab size —
  // each free block occupies >= 4 slab words, so a longer walk is a cycle),
  // and blocks pairwise disjoint when the caller asked for the claim map.
  for (std::uint32_t c = 0; c <= kMaxClass; ++c) {
    std::size_t steps = 0;
    const std::size_t max_steps = data.size() / 4 + 1;
    for (std::uint32_t at = heads[c]; at != kNullOffset; at = data[at]) {
      if (at >= data.size() || (1ull << c) > data.size() - at) {
        return reader.fail("edge arena: free block offset out of bounds");
      }
      if (++steps > max_steps) {
        return reader.fail("edge arena: cyclic free list");
      }
      if (claimed != nullptr) {
        for (std::uint64_t w = 0; w < (1ull << c); ++w) {
          if ((*claimed)[at + w]) {
            return reader.fail("edge arena: free blocks overlap");
          }
          (*claimed)[at + w] = true;
        }
      }
    }
  }
  data_ = std::move(data);
  for (std::uint32_t c = 0; c <= kMaxClass; ++c) free_head_[c] = heads[c];
  return reader.end_section();
}

void EdgeArena::release(Span& span) {
  if (span.spilled) {
    data_[span.words[0]] = free_head_[span.cap_log2];
    free_head_[span.cap_log2] = span.words[0];
  }
  span = Span{};
}

}  // namespace covstream
