#include "sketch/substrate/edge_arena.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace covstream {

EdgeArena::EdgeArena() {
  std::fill(std::begin(free_head_), std::end(free_head_), kNullOffset);
}

std::uint32_t EdgeArena::allocate(std::uint32_t cap_log2) {
  COVSTREAM_CHECK(cap_log2 <= kMaxClass);
  if (free_head_[cap_log2] != kNullOffset) {
    const std::uint32_t offset = free_head_[cap_log2];
    free_head_[cap_log2] = data_[offset];
    return offset;
  }
  const std::size_t offset = data_.size();
  COVSTREAM_CHECK(offset + (1ull << cap_log2) < kNullOffset);
  data_.resize(offset + (1ull << cap_log2));
  return static_cast<std::uint32_t>(offset);
}

void EdgeArena::grow(Span& span) {
  const std::uint32_t new_log2 = span.offset == kNullOffset
                                     ? 0
                                     : static_cast<std::uint32_t>(span.cap_log2) + 1;
  const std::uint32_t new_offset = allocate(new_log2);
  if (span.offset != kNullOffset) {
    std::memcpy(data_.data() + new_offset, data_.data() + span.offset,
                span.size * sizeof(std::uint32_t));
    data_[span.offset] = free_head_[span.cap_log2];
    free_head_[span.cap_log2] = span.offset;
  }
  span.offset = new_offset;
  span.cap_log2 = static_cast<std::uint8_t>(new_log2);
}

void EdgeArena::append(Span& span, SetId value) {
  if (span.size == span.capacity()) grow(span);
  data_[span.offset + span.size] = value;
  ++span.size;
}

bool EdgeArena::insert_sorted(Span& span, SetId value) {
  std::uint32_t* const begin = data_.data() + (span.offset == kNullOffset ? 0 : span.offset);
  std::uint32_t* const end = begin + span.size;
  std::uint32_t* const pos = std::lower_bound(begin, end, value);
  if (pos != end && *pos == value) return false;
  const std::size_t tail = static_cast<std::size_t>(end - pos);
  if (span.size == span.capacity()) {
    const std::size_t at = static_cast<std::size_t>(pos - begin);
    grow(span);
    std::uint32_t* const moved = data_.data() + span.offset;
    std::memmove(moved + at + 1, moved + at, tail * sizeof(std::uint32_t));
    moved[at] = value;
  } else {
    std::memmove(pos + 1, pos, tail * sizeof(std::uint32_t));
    *pos = value;
  }
  ++span.size;
  return true;
}

void EdgeArena::assign(Span& span, std::span<const SetId> values) {
  if (values.size() > span.capacity()) {
    // Covers the un-backed case too: a kNullOffset span has capacity 0.
    release(span);
    const std::uint32_t log2 = static_cast<std::uint32_t>(
        std::bit_width(values.size() - 1));
    span.offset = allocate(log2);
    span.cap_log2 = static_cast<std::uint8_t>(log2);
  }
  if (!values.empty()) {
    std::memcpy(data_.data() + span.offset, values.data(),
                values.size() * sizeof(std::uint32_t));
  }
  span.size = static_cast<std::uint32_t>(values.size());
}

void EdgeArena::release(Span& span) {
  if (span.offset != kNullOffset) {
    data_[span.offset] = free_head_[span.cap_log2];
    free_head_[span.cap_log2] = span.offset;
  }
  span = Span{};
}

}  // namespace covstream
