// Indexed max-heap over sketch slots (DESIGN.md §5.6).
//
// The old sketches used a lazily-compacted std::priority_queue: purge had to
// rebuild the whole queue (no erase), and merge paths re-pushed entries and
// relied on invariants to skip stale ones. This heap keeps a back-pointer
// per slot (slot -> heap position), so removal and key maintenance are
// in-place O(log R) with no stale entries, and `contains` doubles as the
// substrate's liveness test: a slot is alive iff it sits in the heap.
//
// Ordering is lexicographic on (key, slot), matching the pair ordering of
// the priority_queue it replaces bit-for-bit on ties.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/substrate/snapshot.hpp"
#include "util/common.hpp"
#include "util/space_meter.hpp"

namespace covstream {

template <typename Key>
class SlotHeap {
 public:
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  struct Entry {
    Key key{};
    std::uint32_t slot = 0;

    friend bool operator<(const Entry& a, const Entry& b) {
      return a.key < b.key || (a.key == b.key && a.slot < b.slot);
    }
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(std::uint32_t slot) const {
    return slot < pos_.size() && pos_[slot] != kNoPos;
  }

  const Entry& top() const {
    COVSTREAM_CHECK(!heap_.empty());
    return heap_.front();
  }

  /// Key of a present slot (O(1) via the back pointer). The heap is the only
  /// key store in the substrate — slots hold no duplicate copy.
  Key key_of(std::uint32_t slot) const {
    COVSTREAM_CHECK(contains(slot));
    return heap_[pos_[slot]].key;
  }

  void push(Key key, std::uint32_t slot) {
    if (slot >= pos_.size()) pos_.resize(slot + 1, kNoPos);
    COVSTREAM_CHECK(pos_[slot] == kNoPos);
    heap_.push_back({key, slot});
    pos_[slot] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  Entry pop_max() {
    COVSTREAM_CHECK(!heap_.empty());
    const Entry max = heap_.front();
    remove_at(0);
    return max;
  }

  /// In-place removal of a slot's entry (O(log R)); the slot must be present.
  void remove(std::uint32_t slot) {
    COVSTREAM_CHECK(contains(slot));
    remove_at(pos_[slot]);
  }

  /// 8-byte words held: one (Key, uint32) entry (2 words) plus one back
  /// pointer (half a word) per tracked slot.
  std::size_t space_words() const {
    return heap_.size() * 2 + words_for_u32(pos_.size());
  }

  /// Serializes the heap array in its exact internal order plus the tracked
  /// slot range (docs/FORMATS.md §3 'HEAP'). Array order is preserved so a
  /// loaded heap pops, sifts, and accounts space bit-for-bit like the saved
  /// one; the back-pointer index is rebuilt from the entries, not stored.
  void save(SnapshotWriter& writer) const {
    writer.begin_section(snapshot_tag('H', 'E', 'A', 'P'));
    writer.u64(pos_.size());
    writer.u64(heap_.size());
    for (const Entry& entry : heap_) {
      snapshot_write_key(writer, entry.key);
      writer.u32(entry.slot);
    }
    writer.end_section();
  }

  /// Restores a save()d heap, replacing this one. `max_tracked` is the
  /// caller's bound on the slot range (the substrate's slot-array size —
  /// back pointers are not payload-backed, so a forged count must be
  /// rejected against it before the allocation). Validates slot range,
  /// uniqueness, and the max-heap ordering invariant; fails the reader —
  /// returning false — rather than accepting a malformed heap.
  bool load(SnapshotReader& reader, std::uint64_t max_tracked) {
    if (!reader.begin_section(snapshot_tag('H', 'E', 'A', 'P'))) return false;
    const std::uint64_t tracked = reader.u64();
    const std::uint64_t count = reader.u64();
    if (!reader.ok()) return false;
    if (tracked > max_tracked) {
      return reader.fail("slot heap: tracked slot range exceeds the sketch's");
    }
    if (count > tracked) {
      return reader.fail("slot heap: more entries than tracked slots");
    }
    std::vector<Entry> heap(static_cast<std::size_t>(count));
    std::vector<std::uint32_t> pos(static_cast<std::size_t>(tracked), kNoPos);
    for (std::size_t i = 0; i < heap.size(); ++i) {
      snapshot_read_key(reader, heap[i].key);
      heap[i].slot = reader.u32();
      if (!reader.ok()) return false;
      if (heap[i].slot >= tracked || pos[heap[i].slot] != kNoPos) {
        return reader.fail("slot heap: slot out of range or duplicated");
      }
      pos[heap[i].slot] = static_cast<std::uint32_t>(i);
      if (i > 0 && heap[(i - 1) / 2] < heap[i]) {
        return reader.fail("slot heap: max-heap ordering violated");
      }
    }
    heap_ = std::move(heap);
    pos_ = std::move(pos);
    return reader.end_section();
  }

 private:
  void place(std::size_t i, const Entry& entry) {
    heap_[i] = entry;
    pos_[entry.slot] = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i) {
    const Entry entry = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[parent] < entry)) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, entry);
  }

  void sift_down(std::size_t i) {
    const Entry entry = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child] < heap_[child + 1]) ++child;
      if (!(entry < heap_[child])) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, entry);
  }

  void remove_at(std::size_t i) {
    pos_[heap_[i].slot] = kNoPos;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;
    place(i, last);
    sift_down(i);
    sift_up(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  // slot -> heap position
};

}  // namespace covstream
