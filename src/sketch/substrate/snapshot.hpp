// Versioned binary snapshots of sketch state (DESIGN.md §5.9, docs/FORMATS.md).
//
// Every sketch in the library is small by construction (O~(n) words — that is
// the point of the paper), so a crash-recovery story of "persist the sketch,
// not the stream" is cheap: a snapshot is one little-endian file with a fixed
// 32-byte header (magic, format version, endianness marker, object type,
// payload length), a payload of tagged sections, and a trailing FNV-1a
// checksum over everything before it. docs/FORMATS.md is the normative spec;
// this header is the only implementation of it.
//
// Writers buffer the payload in memory and assemble the framed file in
// finish()/write_file(); readers slurp the whole file, verify the frame
// (magic -> version -> endianness -> type -> length -> checksum, in that
// order, so the error names the outermost mismatch), and then hand out
// bounds-checked reads. Any overrun, section mismatch, or invariant failure
// poisons the reader: reads return zero, ok() goes false, and error() holds
// the first failure — load functions check ok() once at the end instead of
// after every field.
//
// Round trips are bit-for-bit: save() serializes the complete query-relevant
// state (including incremental space counters and container geometry), so
// load(save(S)) answers every query — and reports tracked_space_words() —
// exactly as S does, and continues ingesting identically.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace covstream {

/// Format-wide constants (docs/FORMATS.md §1). Bump kSnapshotVersion on any
/// layout change; readers reject every version they were not built for.
inline constexpr char kSnapshotMagic[8] = {'C', 'V', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kSnapshotEndianMarker = 0x0A0B0C0Du;

/// Top-level object tags (docs/FORMATS.md §2). One per snapshottable type.
enum class SnapshotType : std::uint32_t {
  kSubsampleSketch = 1,
  kWeightedSketch = 2,
  kSketchLadder = 3,
  kL0KCover = 4,
  kIngestCheckpoint = 5,
  kFleetManifest = 6,
  kShardSnapshot = 7,
};

/// Section tags (docs/FORMATS.md §3): four ASCII bytes, read as little-endian
/// u32. Sections frame each component's fields so a reader can verify
/// structure, not just bytes.
constexpr std::uint32_t snapshot_tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// 64-bit FNV-1a over a byte range — the snapshot trailer checksum.
std::uint64_t snapshot_checksum(std::span<const std::uint8_t> bytes);

/// Accumulates one snapshot payload in memory; finish() frames it with the
/// header and trailing checksum. All integers little-endian; doubles are the
/// IEEE-754 bit pattern written as u64 (docs/FORMATS.md §1).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotType type) : type_(type) {}

  void u8(std::uint8_t v) { payload_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t len) { raw(data, len); }

  /// Length-prefixed (u64 count) arrays of fixed-width scalars.
  void u32_array(std::span<const std::uint32_t> values) {
    u64(values.size());
    raw(values.data(), values.size() * sizeof(std::uint32_t));
  }
  void u64_array(std::span<const std::uint64_t> values) {
    u64(values.size());
    raw(values.data(), values.size() * sizeof(std::uint64_t));
  }
  void f64_array(std::span<const double> values) {
    u64(values.size());
    raw(values.data(), values.size() * sizeof(double));
  }

  /// Opens a tagged section; the byte length is patched in end_section().
  /// Sections may nest (a sketch section contains the substrate sections).
  void begin_section(std::uint32_t tag);
  void end_section();

  /// Frames header + payload + checksum into one byte image. No open
  /// sections may remain.
  std::vector<std::uint8_t> finish() const;

  /// finish() straight to a file. False (with *error set when non-null) on
  /// I/O failure; the file is written via a temp-and-rename so a crash never
  /// leaves a torn snapshot at `path`.
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    payload_.insert(payload_.end(), p, p + len);
  }

  SnapshotType type_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::size_t> open_sections_;  // offsets of length fields
};

/// Parses one framed snapshot image with bounds-checked reads. Construction
/// verifies the frame; every later failure sets the error state and makes
/// all subsequent reads return zero, so loaders check ok() once at the end.
class SnapshotReader {
 public:
  /// Verifies magic, version, endianness, object type, payload length, and
  /// checksum, in that order (the error names the first mismatch).
  explicit SnapshotReader(std::vector<std::uint8_t> image);

  /// Slurps `path` and parses it. A missing/unreadable file is an error
  /// state, not an abort.
  static SnapshotReader from_file(const std::string& path);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  SnapshotType type() const { return type_; }

  /// Records the first failure (later calls keep the original message).
  /// Always returns false so loaders can `return reader.fail(...)`-style.
  bool fail(const std::string& message);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64() { return std::bit_cast<double>(u64()); }
  bool bytes(void* out, std::size_t len);

  /// Length-prefixed arrays; `max_count` guards against hostile counts
  /// (the implied byte length is also bounds-checked against the payload).
  bool u32_array(std::vector<std::uint32_t>& out, std::uint64_t max_count);
  bool u64_array(std::vector<std::uint64_t>& out, std::uint64_t max_count);
  bool f64_array(std::vector<double>& out, std::uint64_t max_count);

  /// Enters a section: checks the tag and that the recorded length fits the
  /// enclosing scope. end_section() checks the section was consumed exactly.
  bool begin_section(std::uint32_t expected_tag);
  bool end_section();

  /// True once the whole payload has been consumed (load functions call this
  /// last; trailing garbage is a format error).
  bool at_end() const { return !ok() || cursor_ == limit_; }

  /// Bytes left in the current scope (innermost open section, else the
  /// payload). Loaders use it to reject file-supplied counts BEFORE
  /// allocating: a forged count must fail the reader, not trigger a huge
  /// resize or an overflowing multiplication.
  std::size_t remaining() const {
    if (!ok()) return 0;
    const std::size_t scope =
        section_limits_.empty() ? limit_ : section_limits_.back();
    return scope - cursor_;
  }

 private:
  bool need(std::size_t len);

  std::vector<std::uint8_t> image_;
  SnapshotType type_{};
  std::size_t cursor_ = 0;
  std::size_t limit_ = 0;  // payload end (checksum excluded)
  std::vector<std::size_t> section_limits_;
  std::string error_;
};

/// Admission keys are either raw 64-bit hashes or exponential clocks
/// (doubles); both serialize as one u64 word (doubles via their IEEE-754 bit
/// pattern), so the wire format is key-type agnostic (docs/FORMATS.md §1).
inline void snapshot_write_key(SnapshotWriter& writer, std::uint64_t key) {
  writer.u64(key);
}
inline void snapshot_write_key(SnapshotWriter& writer, double key) {
  writer.f64(key);
}
inline void snapshot_read_key(SnapshotReader& reader, std::uint64_t& key) {
  key = reader.u64();
}
inline void snapshot_read_key(SnapshotReader& reader, double& key) {
  key = reader.f64();
}

/// Saves any object exposing `kSnapshotType` and `save(SnapshotWriter&)`.
template <typename T>
bool save_snapshot(const T& object, const std::string& path,
                   std::string* error = nullptr) {
  SnapshotWriter writer(T::kSnapshotType);
  object.save(writer);
  return writer.write_file(path, error);
}

/// Loads any object exposing `kSnapshotType` and a static
/// `load_snapshot(SnapshotReader&) -> std::optional<T>`. Returns nullopt
/// (with *error set when non-null) on any frame, type, or invariant failure.
template <typename T>
std::optional<T> load_snapshot(const std::string& path,
                               std::string* error = nullptr) {
  SnapshotReader reader = SnapshotReader::from_file(path);
  if (reader.ok() && reader.type() != T::kSnapshotType) {
    reader.fail("snapshot holds a different object type");
  }
  std::optional<T> loaded;
  if (reader.ok()) loaded = T::load_snapshot(reader);
  if (loaded && !reader.at_end()) {
    reader.fail("trailing bytes after the object payload");
    loaded.reset();
  }
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    loaded.reset();
  }
  return loaded;
}

}  // namespace covstream
