#include "core/weighted_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "solve/coverage_index.hpp"
#include "util/bitvec.hpp"

namespace covstream {

double WeightedSketchView::estimate_weighted_coverage(
    std::span<const SetId> family) const {
  BitVec touched(num_retained);
  double total = 0.0;
  for (const SetId set : family) {
    for (const std::uint32_t slot : slots_of(set)) {
      if (touched.set_if_clear(slot)) total += slot_value[slot];
    }
  }
  return total;
}

WeightedGreedyResult weighted_greedy_max_cover(const WeightedSketchView& view,
                                               std::uint32_t k) {
  CoverageIndex index(view);
  GreedyScratch scratch;
  return greedy_solve_lazy_weighted(index, view.slot_value, scratch, k);
}

WeightedSubsampleSketch::WeightedSubsampleSketch(SketchParams params)
    : params_((params.validate(), params)),
      hash_(params_.hash_seed),
      degree_cap_(params_.degree_cap()),
      edge_budget_(params_.edge_budget()),
      core_(degree_cap_, edge_budget_, kInfiniteKey, kBaseSpaceWords) {}

double WeightedSubsampleSketch::key_of(ElemId elem, double weight) const {
  COVSTREAM_CHECK(weight > 0.0);
  // key = -log(1 - u)/w is Exp(w)-distributed AND monotone increasing in the
  // unit hash u, so for w == 1 the kept prefix coincides with the unweighted
  // sketch's min-hash prefix (u in [0, 1), so the argument stays positive).
  const double u = hash_to_unit(hash_(elem));
  return -std::log1p(-u) / weight;
}

void WeightedSubsampleSketch::absorb_admitted(const WeightedEdge& edge,
                                              std::uint32_t slot, bool created) {
  if (created) {
    if (slot >= weight_of_slot_.size()) {
      const std::size_t grown = slot + 1 - weight_of_slot_.size();
      weight_of_slot_.resize(slot + 1, 1.0);
      core_.track_policy_space(grown);  // one word per double
    }
    weight_of_slot_[slot] = edge.weight;
  } else {
    // Weights must be a function of the element, not of the arrival.
    COVSTREAM_CHECK(std::abs(weight_of_slot_[slot] - edge.weight) <
                    1e-9 * (1.0 + std::abs(edge.weight)));
  }

  if (core_.add_edge(slot, edge.set, /*dedupe=*/true)) {
    core_.enforce_budget();
  }
}

void WeightedSubsampleSketch::update(const WeightedEdge& edge) {
  COVSTREAM_CHECK(edge.set < params_.num_sets);
  bool created = false;
  const std::uint32_t slot =
      core_.admit(edge.elem, key_of(edge.elem, edge.weight), created);
  core_.note_peak();
  if (slot == MinHashCore<double>::kNoSlot) return;
  absorb_admitted(edge, slot, created);
}

void WeightedSubsampleSketch::update_chunk(std::span<const WeightedEdge> edges) {
  // Mirrors SubsampleSketch::update_chunk: per-edge until the first
  // eviction (everything survives an infinite cutoff), batched pre-filter
  // for the saturated remainder.
  std::size_t start = 0;
  if (!core_.saturated()) {
    while (start < edges.size()) {
      update(edges[start]);
      ++start;
      if (core_.saturated()) break;
    }
    if (start == edges.size()) return;
  }
  const std::span<const WeightedEdge> rest = edges.subspan(start);
  elem_scratch_.resize(rest.size());
  key_scratch_.resize(rest.size());
  for (std::size_t i = 0; i < rest.size(); ++i) {
    COVSTREAM_CHECK(rest[i].set < params_.num_sets);
    elem_scratch_[i] = rest[i].elem;
    key_scratch_[i] = key_of(rest[i].elem, rest[i].weight);
  }
  core_.admit_batch(std::span<const ElemId>(elem_scratch_),
                    std::span<const double>(key_scratch_),
                    [this, rest](std::size_t i, std::uint32_t slot, bool created) {
                      absorb_admitted(rest[i], slot, created);
                    });
  core_.note_peak();  // standing footprint for all-rejected chunks
}

double WeightedSubsampleSketch::tau_star() const {
  if (!saturated()) return kInfiniteKey;
  if (core_.live_elements() == 0) return core_.cutoff();
  return core_.max_live_key();
}

double WeightedSubsampleSketch::ht_value(std::uint32_t slot, double tau) const {
  // Horvitz–Thompson correction. Unsaturated sketch: inclusion prob. 1.
  const double weight = weight_of_slot_[slot];
  if (!saturated()) return weight;
  const double inclusion = 1.0 - std::exp(-weight * tau);
  COVSTREAM_CHECK(inclusion > 0.0);
  return weight / inclusion;
}

WeightedSketchView WeightedSubsampleSketch::view() const {
  WeightedSketchView view;
  view.num_sets = params_.num_sets;
  view.tau_star = tau_star();
  view.num_retained = core_.build_csr(
      params_.num_sets, view.set_offsets, view.set_slots,
      [&](std::uint32_t slot) {
        view.slot_value.push_back(ht_value(slot, view.tau_star));
      });
  return view;
}

double WeightedSubsampleSketch::estimate_weighted_coverage(
    std::span<const SetId> family) const {
  std::vector<bool> in_family(params_.num_sets, false);
  for (const SetId set : family) {
    COVSTREAM_CHECK(set < params_.num_sets);
    in_family[set] = true;
  }
  const double tau = tau_star();
  double total = 0.0;
  for (std::uint32_t slot = 0; slot < core_.slot_count(); ++slot) {
    if (!core_.alive(slot)) continue;
    for (const SetId set : core_.edges_of(slot)) {
      if (!in_family[set]) continue;
      total += ht_value(slot, tau);
      break;
    }
  }
  return total;
}

void WeightedSubsampleSketch::merge_from(const WeightedSubsampleSketch& other) {
  COVSTREAM_CHECK(params_.hash_seed == other.params_.hash_seed);
  COVSTREAM_CHECK(params_.num_sets == other.params_.num_sets);
  COVSTREAM_CHECK(degree_cap_ == other.degree_cap_);
  COVSTREAM_CHECK(edge_budget_ == other.edge_budget_);

  core_.merge_from(
      other.core_, [this, &other](std::uint32_t mine, std::uint32_t theirs) {
        // Mirror the weight the other shard recorded for the slot the merge
        // just minted (same growth accounting as absorb_admitted).
        if (mine >= weight_of_slot_.size()) {
          const std::size_t grown = mine + 1 - weight_of_slot_.size();
          weight_of_slot_.resize(mine + 1, 1.0);
          core_.track_policy_space(grown);
        }
        weight_of_slot_[mine] = other.weight_of_slot_[theirs];
      });
  core_.enforce_budget();
  core_.note_peak();
}

void WeightedSubsampleSketch::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('W', 'S', 'K', 'C'));
  params_.save(writer);
  // Weights precede the core so load can hand the core the policy-side word
  // count its tracked-vs-audit space check needs.
  writer.f64_array(weight_of_slot_);
  core_.save(writer);
  writer.end_section();
}

std::optional<WeightedSubsampleSketch> WeightedSubsampleSketch::load_snapshot(
    SnapshotReader& reader) {
  if (!reader.begin_section(snapshot_tag('W', 'S', 'K', 'C'))) return std::nullopt;
  SketchParams params;
  if (!params.load(reader)) return std::nullopt;
  WeightedSubsampleSketch sketch(params);
  if (!reader.f64_array(sketch.weight_of_slot_, 1ull << 40)) return std::nullopt;
  if (!sketch.core_.load(reader, params.num_sets,
                         sketch.weight_of_slot_.size())) {
    return std::nullopt;
  }
  if (sketch.weight_of_slot_.size() > sketch.core_.slot_count()) {
    reader.fail("weighted sketch: weight array outgrew the slot range");
    return std::nullopt;
  }
  for (std::uint32_t slot = 0; slot < sketch.core_.slot_count(); ++slot) {
    if (sketch.core_.alive(slot) &&
        (slot >= sketch.weight_of_slot_.size() ||
         !(sketch.weight_of_slot_[slot] > 0.0))) {
      reader.fail("weighted sketch: live slot without a positive weight");
      return std::nullopt;
    }
  }
  if (!reader.end_section()) return std::nullopt;
  return sketch;
}

WeightedKCoverResult streaming_weighted_kcover(
    const std::vector<WeightedEdge>& stream, SetId num_sets, std::uint32_t k,
    const SketchParams& params) {
  COVSTREAM_CHECK(params.num_sets == num_sets);
  WeightedSubsampleSketch sketch(params);
  // Feed engine-sized chunks through the batched path (identical result to
  // per-edge updates; chunk size is a buffering knob only).
  const std::span<const WeightedEdge> all(stream);
  constexpr std::size_t kChunk = 1 << 15;
  for (std::size_t at = 0; at < all.size(); at += kChunk) {
    sketch.update_chunk(all.subspan(at, std::min(kChunk, all.size() - at)));
  }
  const WeightedGreedyResult greedy = weighted_greedy_max_cover(sketch.view(), k);
  WeightedKCoverResult result;
  result.solution = greedy.solution;
  result.estimated_value = greedy.value;
  result.space_words = sketch.peak_space_words();
  return result;
}

}  // namespace covstream
