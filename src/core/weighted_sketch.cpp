#include "core/weighted_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitvec.hpp"

namespace covstream {

double WeightedSketchView::estimate_weighted_coverage(
    std::span<const SetId> family) const {
  BitVec touched(num_retained);
  double total = 0.0;
  for (const SetId set : family) {
    for (const std::uint32_t slot : slots_of(set)) {
      if (touched.set_if_clear(slot)) total += slot_value[slot];
    }
  }
  return total;
}

WeightedGreedyResult weighted_greedy_max_cover(const WeightedSketchView& view,
                                               std::uint32_t k) {
  WeightedGreedyResult result;
  if (k == 0 || view.num_sets == 0) return result;
  BitVec covered(view.num_retained);
  std::priority_queue<std::pair<double, SetId>> heap;
  for (SetId s = 0; s < view.num_sets; ++s) {
    double total = 0.0;
    for (const std::uint32_t slot : view.slots_of(s)) total += view.slot_value[slot];
    if (total > 0.0) heap.emplace(total, s);
  }
  auto current_gain = [&](SetId s) {
    double gain = 0.0;
    for (const std::uint32_t slot : view.slots_of(s)) {
      if (!covered.test(slot)) gain += view.slot_value[slot];
    }
    return gain;
  };
  while (result.solution.size() < k && !heap.empty()) {
    const auto [cached, set] = heap.top();
    heap.pop();
    const double gain = current_gain(set);
    if (gain <= 0.0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.emplace(gain, set);
      continue;
    }
    for (const std::uint32_t slot : view.slots_of(set)) {
      if (covered.set_if_clear(slot)) result.value += view.slot_value[slot];
    }
    result.solution.push_back(set);
  }
  return result;
}

WeightedSubsampleSketch::WeightedSubsampleSketch(SketchParams params)
    : params_(params), hash_(params.hash_seed) {
  params_.validate();
  degree_cap_ = params_.degree_cap();
  edge_budget_ = params_.edge_budget();
}

double WeightedSubsampleSketch::key_of(ElemId elem, double weight) const {
  COVSTREAM_CHECK(weight > 0.0);
  // key = -log(1 - u)/w is Exp(w)-distributed AND monotone increasing in the
  // unit hash u, so for w == 1 the kept prefix coincides with the unweighted
  // sketch's min-hash prefix (u in [0, 1), so the argument stays positive).
  const double u = hash_to_unit(hash_(elem));
  return -std::log1p(-u) / weight;
}

void WeightedSubsampleSketch::update(const WeightedEdge& edge) {
  COVSTREAM_CHECK(edge.set < params_.num_sets);
  const double key = key_of(edge.elem, edge.weight);
  if (key >= cutoff_key_) return;

  auto it = slot_of_.find(edge.elem);
  std::uint32_t slot_index;
  if (it == slot_of_.end()) {
    if (free_slots_.empty()) {
      slot_index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot_index = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& slot = slots_[slot_index];
    slot.elem = edge.elem;
    slot.key = key;
    slot.weight = edge.weight;
    slot.alive = true;
    slot.sets.clear();
    slot_of_.emplace(edge.elem, slot_index);
    by_key_.emplace(key, slot_index);
    ++live_elements_;
  } else {
    slot_index = it->second;
    // Weights must be a function of the element, not of the arrival.
    COVSTREAM_CHECK(std::abs(slots_[slot_index].weight - edge.weight) <
                    1e-9 * (1.0 + std::abs(edge.weight)));
  }

  Slot& slot = slots_[slot_index];
  if (slot.sets.size() >= degree_cap_) return;
  const auto pos = std::lower_bound(slot.sets.begin(), slot.sets.end(), edge.set);
  if (pos != slot.sets.end() && *pos == edge.set) return;
  slot.sets.insert(pos, edge.set);
  ++stored_edges_;

  while (stored_edges_ > edge_budget_ && live_elements_ > 1) {
    evict_max();
  }
  const std::size_t words = space_words();
  if (words > peak_space_words_) peak_space_words_ = words;
}

void WeightedSubsampleSketch::evict_max() {
  COVSTREAM_CHECK(!by_key_.empty());
  const auto [key, slot_index] = by_key_.top();
  by_key_.pop();
  Slot& slot = slots_[slot_index];
  COVSTREAM_CHECK(slot.alive && slot.key == key);
  cutoff_key_ = std::min(cutoff_key_, key);
  stored_edges_ -= slot.sets.size();
  slot_of_.erase(slot.elem);
  slot.alive = false;
  slot.sets.clear();
  slot.sets.shrink_to_fit();
  free_slots_.push_back(slot_index);
  --live_elements_;
}

double WeightedSubsampleSketch::tau_star() const {
  if (!saturated()) return kInfiniteKey;
  if (by_key_.empty()) return cutoff_key_;
  return by_key_.top().first;
}

WeightedSketchView WeightedSubsampleSketch::view() const {
  WeightedSketchView view;
  view.num_sets = params_.num_sets;
  view.tau_star = tau_star();
  view.set_offsets.assign(params_.num_sets + 1, 0);

  std::vector<std::uint32_t> compact(slots_.size(), 0);
  std::uint32_t next = 0;
  view.slot_value.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].alive) continue;
    compact[i] = next++;
    // Horvitz–Thompson correction. Unsaturated sketch: inclusion prob. 1.
    double value = slots_[i].weight;
    if (saturated()) {
      const double inclusion = 1.0 - std::exp(-slots_[i].weight * view.tau_star);
      COVSTREAM_CHECK(inclusion > 0.0);
      value = slots_[i].weight / inclusion;
    }
    view.slot_value.push_back(value);
  }
  view.num_retained = next;

  for (const Slot& slot : slots_) {
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) ++view.set_offsets[set + 1];
  }
  for (SetId s = 0; s < params_.num_sets; ++s) {
    view.set_offsets[s + 1] += view.set_offsets[s];
  }
  view.set_slots.resize(stored_edges_);
  std::vector<std::size_t> cursor(view.set_offsets.begin(), view.set_offsets.end() - 1);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) {
      view.set_slots[cursor[set]++] = compact[i];
    }
  }
  return view;
}

double WeightedSubsampleSketch::estimate_weighted_coverage(
    std::span<const SetId> family) const {
  std::vector<bool> in_family(params_.num_sets, false);
  for (const SetId set : family) in_family[set] = true;
  const double tau = tau_star();
  double total = 0.0;
  for (const Slot& slot : slots_) {
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) {
      if (!in_family[set]) continue;
      if (saturated()) {
        total += slot.weight / (1.0 - std::exp(-slot.weight * tau));
      } else {
        total += slot.weight;
      }
      break;
    }
  }
  return total;
}

std::size_t WeightedSubsampleSketch::space_words() const {
  // Same layout as the unweighted sketch plus one weight word per element.
  return 8 + live_elements_ * 8 + (stored_edges_ + 1) / 2;
}

WeightedKCoverResult streaming_weighted_kcover(
    const std::vector<WeightedEdge>& stream, SetId num_sets, std::uint32_t k,
    const SketchParams& params) {
  COVSTREAM_CHECK(params.num_sets == num_sets);
  WeightedSubsampleSketch sketch(params);
  for (const WeightedEdge& edge : stream) sketch.update(edge);
  const WeightedGreedyResult greedy = weighted_greedy_max_cover(sketch.view(), k);
  WeightedKCoverResult result;
  result.solution = greedy.solution;
  result.estimated_value = greedy.value;
  result.space_words = sketch.peak_space_words();
  return result;
}

}  // namespace covstream
