// Weighted coverage sketching — the natural extension the paper's conclusion
// invites ("we hope this technique can be applied to ... other problems").
//
// Problem: elements carry weights w(e) > 0 and the objective is
// C_w(S) = sum of w(e) over covered e (weighted max-k-cover). Uniform
// subsampling wastes its budget on low-weight elements, so we replace the
// uniform hash with an *exponential clock*: key(e) = -ln(u_e)/w(e) with
// u_e = unit hash of e. Then P[key(e) <= tau] = 1 - exp(-w(e) tau): heavy
// elements are kept preferentially, and keeping the smallest keys is a
// weighted bottom-k (order) sample.
//
// Estimation uses the Horvitz–Thompson correction at the realized threshold
// tau* (the largest retained key): each retained covered element contributes
// w(e) / (1 - exp(-w(e) tau*)). For w == 1 the scheme degenerates exactly to
// the unweighted H<=n sketch (keys are monotone in the hash), which the
// tests exploit.
//
// The degree cap and edge budget carry over unchanged — the cap argument
// (Lemma 2.4) never used uniformity, only that at most eps-fraction of the
// *sampled* mass is affected.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/greedy_on_sketch.hpp"
#include "core/params.hpp"
#include "hash/hash64.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"

namespace covstream {

/// An edge with its element's weight (the weight must be consistent across
/// all arrivals of the same element; checked in debug mode).
struct WeightedEdge {
  SetId set = 0;
  ElemId elem = 0;
  double weight = 1.0;
};

/// Solver view with Horvitz–Thompson-corrected weights per retained slot.
struct WeightedSketchView {
  SetId num_sets = 0;
  std::size_t num_retained = 0;
  std::vector<std::size_t> set_offsets;
  std::vector<std::uint32_t> set_slots;
  std::vector<double> slot_value;  // HT-corrected weight per slot
  double tau_star = 0.0;           // realized key threshold

  std::span<const std::uint32_t> slots_of(SetId set) const {
    COVSTREAM_CHECK(set < num_sets);
    return {set_slots.data() + set_offsets[set],
            set_offsets[set + 1] - set_offsets[set]};
  }

  /// HT estimate of C_w(family).
  double estimate_weighted_coverage(std::span<const SetId> family) const;
};

struct WeightedGreedyResult {
  std::vector<SetId> solution;
  double value = 0.0;  // HT-estimated weighted coverage
};

/// Lazy greedy maximizing HT-estimated weighted coverage on the view.
WeightedGreedyResult weighted_greedy_max_cover(const WeightedSketchView& view,
                                               std::uint32_t k);

class WeightedSubsampleSketch {
 public:
  explicit WeightedSubsampleSketch(SketchParams params);

  void update(const WeightedEdge& edge);

  std::size_t retained_elements() const { return live_elements_; }
  std::size_t stored_edges() const { return stored_edges_; }

  /// Realized key threshold tau* (infinite — i.e. "keep everything" — until
  /// the first eviction; reported as the max retained key then).
  double tau_star() const;
  bool saturated() const { return cutoff_key_ != kInfiniteKey; }

  bool is_retained(ElemId elem) const { return slot_of_.count(elem) > 0; }

  WeightedSketchView view() const;

  /// HT estimate of the weighted coverage of a family (linear scan).
  double estimate_weighted_coverage(std::span<const SetId> family) const;

  std::size_t space_words() const;
  std::size_t peak_space_words() const { return peak_space_words_; }

 private:
  static constexpr double kInfiniteKey = 1e300;

  struct Slot {
    ElemId elem = kInvalidElem;
    double key = 0.0;
    double weight = 1.0;
    bool alive = false;
    std::vector<SetId> sets;
  };

  double key_of(ElemId elem, double weight) const;
  void evict_max();

  SketchParams params_;
  Mix64Hash hash_;
  std::size_t degree_cap_ = 0;
  std::size_t edge_budget_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<ElemId, std::uint32_t> slot_of_;
  std::priority_queue<std::pair<double, std::uint32_t>> by_key_;
  double cutoff_key_ = kInfiniteKey;
  std::size_t stored_edges_ = 0;
  std::size_t live_elements_ = 0;
  std::size_t peak_space_words_ = 0;
};

/// Single-pass streaming weighted k-cover: build the weighted sketch over a
/// stream of weighted edges, then run weighted greedy.
struct WeightedKCoverResult {
  std::vector<SetId> solution;
  double estimated_value = 0.0;
  std::size_t space_words = 0;
};
WeightedKCoverResult streaming_weighted_kcover(
    const std::vector<WeightedEdge>& stream, SetId num_sets, std::uint32_t k,
    const SketchParams& params);

}  // namespace covstream
