// Weighted coverage sketching — the natural extension the paper's conclusion
// invites ("we hope this technique can be applied to ... other problems").
//
// Problem: elements carry weights w(e) > 0 and the objective is
// C_w(S) = sum of w(e) over covered e (weighted max-k-cover). Uniform
// subsampling wastes its budget on low-weight elements, so we replace the
// uniform hash with an *exponential clock*: key(e) = -ln(u_e)/w(e) with
// u_e = unit hash of e. Then P[key(e) <= tau] = 1 - exp(-w(e) tau): heavy
// elements are kept preferentially, and keeping the smallest keys is a
// weighted bottom-k (order) sample.
//
// Estimation uses the Horvitz–Thompson correction at the realized threshold
// tau* (the largest retained key): each retained covered element contributes
// w(e) / (1 - exp(-w(e) tau*)). For w == 1 the scheme degenerates exactly to
// the unweighted H<=n sketch (keys are monotone in the hash), which the
// tests exploit.
//
// The degree cap and edge budget carry over unchanged — the cap argument
// (Lemma 2.4) never used uniformity, only that at most eps-fraction of the
// *sampled* mass is affected.
//
// Storage and eviction live in the shared flat substrate (MinHashCore,
// DESIGN.md §5.6); this class is the weighted policy over it: the admission
// key is the double-valued exponential clock, plus one weight per slot kept
// in a sketch-side parallel array.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/greedy_on_sketch.hpp"
#include "core/params.hpp"
#include "hash/hash64.hpp"
#include "sketch/substrate/minhash_core.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"

namespace covstream {

/// An edge with its element's weight (the weight must be consistent across
/// all arrivals of the same element; checked in debug mode).
struct WeightedEdge {
  SetId set = 0;
  ElemId elem = 0;
  double weight = 1.0;
};

/// Solver view with Horvitz–Thompson-corrected weights per retained slot.
struct WeightedSketchView {
  SetId num_sets = 0;
  std::size_t num_retained = 0;
  std::vector<std::size_t> set_offsets;
  std::vector<std::uint32_t> set_slots;
  std::vector<double> slot_value;  // HT-corrected weight per slot
  double tau_star = 0.0;           // realized key threshold

  std::span<const std::uint32_t> slots_of(SetId set) const {
    COVSTREAM_CHECK(set < num_sets);
    return {set_slots.data() + set_offsets[set],
            set_offsets[set + 1] - set_offsets[set]};
  }

  /// HT estimate of C_w(family).
  double estimate_weighted_coverage(std::span<const SetId> family) const;
};

/// Lazy greedy maximizing HT-estimated weighted coverage on the view — a
/// thin wrapper over the shared solver engine's weighted lazy strategy
/// (WeightedGreedyResult lives in solve/greedy_engine.hpp; weighted gains
/// are doubles, so only the rescan strategy is bit-for-bit reproducible —
/// see DESIGN.md §5.10).
WeightedGreedyResult weighted_greedy_max_cover(const WeightedSketchView& view,
                                               std::uint32_t k);

class WeightedSubsampleSketch {
 public:
  explicit WeightedSubsampleSketch(SketchParams params);

  void update(const WeightedEdge& edge);

  /// Chunk-vectorized update: computes the exponential-clock keys for the
  /// whole chunk into reusable scratch, then drives the substrate's batched
  /// admission (DESIGN.md §5.8). Bit-for-bit equal to per-edge update().
  void update_chunk(std::span<const WeightedEdge> edges);

  std::size_t retained_elements() const { return core_.live_elements(); }
  std::size_t stored_edges() const { return core_.stored_edges(); }

  /// Realized key threshold tau* (infinite — i.e. "keep everything" — until
  /// the first eviction; reported as the max retained key then).
  double tau_star() const;
  bool saturated() const { return core_.saturated(); }

  bool is_retained(ElemId elem) const {
    return core_.find(elem) != MinHashCore<double>::kNoSlot;
  }

  WeightedSketchView view() const;

  /// HT estimate of the weighted coverage of a family (linear scan).
  double estimate_weighted_coverage(std::span<const SetId> family) const;

  /// Union-merges `other` into *this (identical params required). Shards of
  /// a partitioned weighted stream merge exactly like the unweighted sketch
  /// (the exponential clock is a pure function of element and weight); the
  /// per-slot weight array follows via the substrate's adoption hook.
  void merge_from(const WeightedSubsampleSketch& other);

  /// Analytic space in 8-byte words (DESIGN.md §5.2): the shared substrate
  /// plus one weight word per slot. Audit re-sum; the substrate tracks the
  /// same value incrementally (the weight array's growth is folded in via
  /// track_policy_space) and maintains the peak from it.
  std::size_t space_words() const {
    return kBaseSpaceWords + core_.space_words() + weight_of_slot_.size();
  }
  std::size_t peak_space_words() const { return core_.peak_space_words(); }

  // ----------------------------------------------------------- persistence --
  /// Snapshot object tag (docs/FORMATS.md §2); save/load via the
  /// save_snapshot()/load_snapshot() helpers of substrate/snapshot.hpp.
  static constexpr SnapshotType kSnapshotType = SnapshotType::kWeightedSketch;

  /// Serializes params, the per-slot weight array, and the substrate state
  /// (DESIGN.md §5.9); round trips are bit-for-bit, including tau*, HT
  /// estimates, and tracked_space_words().
  void save(SnapshotWriter& writer) const;

  /// Restores a save()d sketch; nullopt (reader error set) on any frame or
  /// invariant failure.
  static std::optional<WeightedSubsampleSketch> load_snapshot(
      SnapshotReader& reader);

 private:
  static constexpr double kInfiniteKey = 1e300;
  /// Fixed sketch-header overhead counted on top of the substrate.
  static constexpr std::size_t kBaseSpaceWords = 8;

  double key_of(ElemId elem, double weight) const;
  double ht_value(std::uint32_t slot, double tau) const;
  /// Shared tail of both update paths: weight bookkeeping for an admitted
  /// edge's slot, then the append + budget enforcement.
  void absorb_admitted(const WeightedEdge& edge, std::uint32_t slot,
                       bool created);

  SketchParams params_;
  Mix64Hash hash_;
  std::size_t degree_cap_ = 0;
  std::size_t edge_budget_ = 0;

  MinHashCore<double> core_;
  std::vector<double> weight_of_slot_;  // parallel to substrate slots
  // Reusable per-chunk scratch for update_chunk (elem ids + clock keys).
  std::vector<ElemId> elem_scratch_;
  std::vector<double> key_scratch_;
};

/// Single-pass streaming weighted k-cover: build the weighted sketch over a
/// stream of weighted edges, then run weighted greedy.
struct WeightedKCoverResult {
  std::vector<SetId> solution;
  double estimated_value = 0.0;
  std::size_t space_words = 0;
};
WeightedKCoverResult streaming_weighted_kcover(
    const std::vector<WeightedEdge>& stream, SetId num_sets, std::uint32_t k,
    const SketchParams& params);

}  // namespace covstream
