// Algorithm 5 / Theorem 3.3: single-pass (1+eps) log(1/lambda)-approximate
// set cover with lambda outliers, O~_lambda(n) space, edge arrival.
//
// Strategy: guess the optimal cover size k' on the geometric grid
// (1 + eps/3)^i, build one sketch per guess in a single shared pass (the
// paper's "run these in parallel"), then accept the smallest guess whose
// Algorithm-4 evaluation succeeds.
#pragma once

#include <cstdint>
#include <vector>

#include "core/setcover_submodule.hpp"
#include "core/streaming_kcover.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"

namespace covstream {

struct OutliersOptions {
  StreamingOptions stream;  // eps here is the theorem's eps
  double lambda = 0.1;      // outlier fraction, in (0, 1/e]
  double c_confidence = 1.0;  // the theorem's C >= 1
  /// Geometric growth of the k' guess ladder; 0 means the paper's 1 + eps/3.
  /// Coarser ladders trade solution size for fewer sketches (ablation knob).
  double guess_growth = 0.0;
  ThreadPool* pool = nullptr;
};

struct OutliersResult {
  bool feasible = false;           // false only if every guess failed
  std::vector<SetId> solution;
  std::uint32_t accepted_k_prime = 0;  // the guess that succeeded
  double sketch_cover_fraction = 0.0;
  std::size_t ladder_rungs = 0;
  std::size_t space_words = 0;  // sum of rung peaks (they coexist)
  std::size_t passes = 0;
};

/// Derived per-guess parameters; exposed for tests/ablations.
struct OutliersPlan {
  double eps_prime = 0.0;    // lambda (1 - e^{-eps/2})
  double lambda_prime = 0.0; // lambda e^{-eps/2}
  double delta_pp = 0.0;
  std::vector<SubmoduleParams> guesses;  // increasing k'
};
OutliersPlan plan_outliers(SetId num_sets, const OutliersOptions& options);

/// Runs Algorithm 5 over a single pass of `stream`.
OutliersResult streaming_setcover_outliers(EdgeStream& stream, SetId num_sets,
                                           const OutliersOptions& options);

}  // namespace covstream
