// The H<=n coverage sketch (Section 2 of the paper).
//
// Conceptually: hash every element to [0,1]; H_p keeps elements with hash at
// most p; H'_p additionally caps each element's degree at
// n*log(1/eps)/(eps*k); H<=n picks p = p* automatically so that the sketch
// holds Theta(edge_budget) = O~(n) edges.
//
// Streaming realization (Algorithm 2, recast as max-hash eviction —
// DESIGN.md §5.1): we retain the elements with the smallest hashes whose
// capped edges fit the budget. On every arriving edge we (1) drop it if its
// element hash is above the running cutoff (the element was evicted before),
// (2) otherwise append it subject to the degree cap, and (3) evict the
// retained element with the maximum hash while over budget. Eviction is
// final: once the prefix below some hash exceeds the budget it exceeds it
// forever, so the final state equals the offline H'_{p*} (Algorithm 1) with
// p* = the largest hash prefix whose capped edges fit the budget.
//
// Update cost is O(1) amortized plus O(log R) per eviction (R = retained
// elements) — the O~(1) update time claimed in Section 3.
//
// Storage and eviction live in the shared flat substrate (MinHashCore,
// DESIGN.md §5.6); this class is the unweighted policy over it: the
// admission key is the raw 64-bit element hash.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "graph/coverage_instance.hpp"
#include "hash/hash64.hpp"
#include "sketch/substrate/minhash_core.hpp"
#include "stream/edge_stream.hpp"
#include "util/bitvec.hpp"
#include "util/common.hpp"

namespace covstream {

/// Solver-friendly snapshot of a finished sketch: a CSR from sets to retained
/// element slots, plus the realized threshold p*.
struct SketchView {
  SetId num_sets = 0;
  std::size_t num_retained = 0;          // elements kept by the sketch
  std::vector<std::size_t> set_offsets;  // num_sets + 1
  std::vector<std::uint32_t> set_slots;  // retained-element slot per edge
  double p_star = 1.0;                   // realized sampling threshold

  std::size_t num_edges() const { return set_slots.size(); }

  std::span<const std::uint32_t> slots_of(SetId set) const {
    COVSTREAM_CHECK(set < num_sets);
    return {set_slots.data() + set_offsets[set],
            set_offsets[set + 1] - set_offsets[set]};
  }

  /// |Gamma(sketch, family)|: retained elements touched by the family.
  std::size_t neighborhood_size(std::span<const SetId> family) const;

  /// Coverage estimate |Gamma(sketch, family)| / p* (Lemma 2.2 form).
  double estimate_coverage(std::span<const SetId> family) const;
};

class SubsampleSketch {
 public:
  explicit SubsampleSketch(SketchParams params);

  /// Streaming update with one edge (O~(1)).
  void update(const Edge& edge);

  /// Chunk-vectorized update: hashes the whole chunk into a reusable key
  /// scratch, then drives the substrate's batched admission (cutoff
  /// pre-filter, survivor compaction, table prefetch — DESIGN.md §5.8).
  /// Bit-for-bit equal to calling update() per edge, in order.
  void update_chunk(std::span<const Edge> edges);

  /// Same, but with the element/key spans already computed by the caller
  /// (the ladder hashes once per chunk and shares the spans across rungs).
  /// `elems[i]`/`keys[i]` must be edges[i].elem and its hash under this
  /// sketch's seed; the ladder guarantees this by only sharing across rungs
  /// with equal hash_seed.
  void update_chunk_with_keys(std::span<const Edge> edges,
                              std::span<const ElemId> elems,
                              std::span<const std::uint64_t> keys);

  /// Same, but over a pre-compacted candidate index list (the ladder
  /// pre-filters each chunk ONCE against the max admission cutoff across
  /// rungs; every candidate is still re-checked against THIS sketch's live
  /// cutoff, so over-approximate candidate lists are always safe).
  void update_candidates_with_keys(std::span<const Edge> edges,
                                   std::span<const ElemId> elems,
                                   std::span<const std::uint64_t> keys,
                                   std::span<const std::uint32_t> candidates);

  /// Raw 64-bit admission cutoff (2^64-1 until the first eviction). Edges
  /// whose element hash is at or above it are dropped; the ladder uses the
  /// max across rungs to pre-filter shared chunks once.
  std::uint64_t admission_cutoff() const { return core_.cutoff(); }

  /// Convenience: runs one full pass of `stream` through update_chunk(),
  /// pulled in engine-sized batches. `batch_edges` = 0 picks the engine
  /// default.
  void consume(EdgeStream& stream, std::size_t batch_edges = 0);

  /// Algorithm 1: offline construction (hash-sort elements, take the maximal
  /// prefix fitting the budget). Used by tests to validate the streaming
  /// path: both construct the same object for the same params/seed.
  static SubsampleSketch build_offline(const CoverageInstance& instance,
                                       SketchParams params);

  const SketchParams& params() const { return params_; }

  std::size_t retained_elements() const { return core_.live_elements(); }
  std::size_t stored_edges() const { return core_.stored_edges(); }

  /// Realized threshold p*: the largest retained unit hash (1.0 while nothing
  /// has been evicted — then the sketch is the whole capped graph H'_1).
  double p_star() const;

  /// True if any element was ever evicted (i.e. p* < 1 meaningfully).
  bool saturated() const { return core_.saturated(); }

  /// Sorted set ids stored for a retained element (empty span if the element
  /// is not retained). Mainly for tests.
  std::span<const SetId> sets_of(ElemId elem) const;

  bool is_retained(ElemId elem) const;

  /// Removes retained elements matching `pred` (with their edges); slot and
  /// arena storage goes back on the substrate free lists. The result is
  /// still a valid hash-prefix sketch of the surviving subgraph (used by
  /// Algorithm 6's merged marking pass to drop just-covered elements at end
  /// of pass). Templated so the per-slot predicate call inlines; the
  /// std::function overload below keeps type-erased callers working.
  template <typename Pred>
  void purge(Pred&& pred) {
    core_.purge(std::forward<Pred>(pred));
  }
  void purge(const std::function<bool(ElemId)>& pred) {
    core_.purge(pred);
  }

  /// Union-merges `other` into *this (both must share params and hash seed,
  /// and have dedupe enabled). If the two sketches were built over two
  /// partitions of a stream, the merge result equals the sketch of the whole
  /// stream: the paper's companion distributed application — shards are
  /// mergeable because the retained set is a min-hash prefix, and any
  /// element evicted by either shard is provably outside the combined
  /// prefix. See core/distributed.hpp for the shard driver.
  void merge_from(const SubsampleSketch& other);

  /// Builds the solver view (CSR set -> retained slots).
  SketchView view() const;

  /// Coverage estimate without materializing a view (linear scan; fine for
  /// tests and small families).
  double estimate_coverage(std::span<const SetId> family) const;

  /// Analytic space in 8-byte words (DESIGN.md §5.2): the substrate's flat
  /// table + slot arrays + heap + edge slab, measured, not modeled. This is
  /// the audit re-sum; the substrate maintains the same value incrementally
  /// (tracked_space_words), which is what peak tracking reads.
  std::size_t space_words() const { return kBaseSpaceWords + core_.space_words(); }

  /// Peak space over the run (eviction shrinks the sketch; peak is what a
  /// space bound must pay for). Maintained by the substrate from counter
  /// deltas at every mutation — no per-edge re-sum (DESIGN.md §5.8).
  std::size_t peak_space_words() const { return core_.peak_space_words(); }

  // ----------------------------------------------------------- persistence --
  /// Snapshot object tag (docs/FORMATS.md §2); save/load via the
  /// save_snapshot()/load_snapshot() helpers of substrate/snapshot.hpp.
  static constexpr SnapshotType kSnapshotType = SnapshotType::kSubsampleSketch;

  /// Serializes params + the full substrate state (DESIGN.md §5.9). The
  /// loaded twin answers every query — view(), p*, estimates, space — bit
  /// for bit, and continues ingesting identically (cutoff, heap order, and
  /// free lists are all part of the image).
  void save(SnapshotWriter& writer) const;

  /// Restores a save()d sketch; nullopt (reader error set) on any frame or
  /// invariant failure — never a partially-initialized sketch.
  static std::optional<SubsampleSketch> load_snapshot(SnapshotReader& reader);

 private:
  /// Shared tail of every update path: append the admitted edge's set to
  /// its slot and keep the budget enforced. All three admission shapes
  /// (per-edge, batched, candidate list) must run exactly this.
  void absorb_admitted(std::uint32_t slot, SetId set) {
    if (core_.add_edge(slot, set, params_.dedupe_edges)) {
      core_.enforce_budget();
    }
  }

  /// Fixed sketch-header overhead counted on top of the substrate.
  static constexpr std::size_t kBaseSpaceWords = 8;

  SketchParams params_;
  Mix64Hash hash_;
  std::size_t degree_cap_ = 0;
  std::size_t edge_budget_ = 0;

  MinHashCore<std::uint64_t> core_;
  // Reusable per-chunk scratch for update_chunk (elem ids + hashed keys).
  std::vector<ElemId> elem_scratch_;
  std::vector<std::uint64_t> key_scratch_;
};

}  // namespace covstream
