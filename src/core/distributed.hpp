// Distributed coverage sketching (the paper's companion application [10]):
// partition the edge stream across W workers, build one H<=n shard per
// worker with the SAME hash seed, then reduce by merging — the merged sketch
// is identical to the one a single pass over the whole stream would build,
// so every Section 3 algorithm runs unchanged on it.
//
// ShardedSketchBuilder simulates the MapReduce round locally: the batched
// stream engine deals edges to shards (round-robin or element-hash
// partitioned), shards are updated concurrently via the ThreadPool, and
// finalize() performs the reduction tree.
#pragma once

#include <cstdint>
#include <vector>

#include "core/subsample_sketch.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/stream_engine.hpp"

namespace covstream {

/// How consume() assigns stream edges to shards.
enum class ShardRouting {
  kRoundRobin,     // deal by arrival index (the distributed default)
  kByElementHash,  // all edges of an element land on one shard
};

class ShardedSketchBuilder {
 public:
  /// `params.dedupe_edges` must be true (merge requires it).
  ShardedSketchBuilder(SketchParams params, std::size_t shards,
                       ThreadPool* pool = nullptr);

  std::size_t shard_count() const { return shards_.size(); }

  /// Routes an edge to a specific shard (the distributed setting: whichever
  /// worker owns that part of the input).
  void update(std::size_t shard, const Edge& edge);

  /// Consumes a whole stream through the engine's partitioned fan-out
  /// (shard updates parallelized when a pool is given). `batch_edges` = 0
  /// picks the engine default.
  void consume(EdgeStream& stream, ShardRouting routing = ShardRouting::kRoundRobin,
               std::size_t batch_edges = 0);

  /// Per-worker peak space (what each machine pays before the reduce).
  std::size_t max_shard_space_words() const;

  /// Reduces all shards into one sketch (pairwise merge tree). The builder
  /// is consumed: shards are left empty.
  SubsampleSketch finalize();

 private:
  std::vector<SubsampleSketch> shards_;
  ThreadPool* pool_;
};

}  // namespace covstream
