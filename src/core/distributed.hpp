// Distributed coverage sketching (the paper's companion application [10]):
// partition the edge stream across W workers, build one H<=n shard per
// worker with the SAME hash seed, then reduce by merging — the merged sketch
// is identical to the one a single pass over the whole stream would build,
// so every Section 3 algorithm runs unchanged on it.
//
// Two regimes share this header (DESIGN.md §5.14):
//
//  * In-process: ShardedSketchBuilder simulates the MapReduce round locally —
//    the batched stream engine deals edges to shards, shards update
//    concurrently via the ThreadPool, and finalize() runs the reduction tree.
//
//  * Multi-process: N `covstream_cli --cmd=worker` processes each ingest the
//    slice of the stream a shared router assigns them
//    (shard_ownership_filter), then emit one ShardSnapshot file — the §5.9
//    snapshot format carrying a shard manifest (id, count, routing, router
//    seed) in front of the sketch. A coordinator process collects the files,
//    validates the set as a coherent partition (validate_shard_set: every
//    shard present exactly once, identical params — mismatches fail loudly,
//    never a silent partial merge), reduces them with hierarchical_merge
//    (configurable fan-in, pool-parallel groups per level), and solves on
//    the merged sketch.
//
// Exactness: with kByElementHash routing every edge of an element lands on
// one shard, so the merged sketch is bit-for-bit the single-stream sketch
// regardless of caps or budgets. kRoundRobin splits an element's edges
// across shards; the merge unions them sorted, which agrees with the
// single-stream sketch except when the per-element degree cap binds (the
// single-stream sketch keeps the first cap edges in ARRIVAL order, the
// merge keeps the smallest cap set ids). Hash routing is therefore the
// distributed default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/subsample_sketch.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/stream_engine.hpp"

namespace covstream {

/// How stream edges are assigned to shards.
enum class ShardRouting : std::uint32_t {
  kRoundRobin = 0,     // deal by arrival index (exact only while caps don't bind)
  kByElementHash = 1,  // all edges of an element land on one shard (always exact)
};

std::string to_string(ShardRouting routing);

/// Parses the CLI spelling ("rr" / "hash"); nullopt on anything else.
std::optional<ShardRouting> parse_shard_routing(std::string_view text);

/// The partition seed rides on the sketch hash seed so a routing choice is
/// reproducible per run but independent of the element-admission hash. Every
/// worker and the in-process builder derive it the same way — a shard set
/// built with different seeds would be a corrupt partition, so the manifest
/// records it and the coordinator cross-checks.
std::uint64_t shard_router_seed(const SketchParams& params);

/// Provenance frame a worker writes in front of its shard sketch
/// (docs/FORMATS.md §3 'SHRD'): which slice of which partition this is.
struct ShardManifest {
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  ShardRouting routing = ShardRouting::kByElementHash;
  std::uint64_t router_seed = 0;
  std::uint64_t edges_ingested = 0;  // edges this worker owned and consumed
};

/// The engine router realizing a manifest's partition (shared with the
/// in-process builder — both regimes deal edges identically).
StreamEngine::Router make_shard_router(ShardRouting routing,
                                       std::size_t shard_count,
                                       std::uint64_t router_seed);

/// One worker's admission predicate: passes exactly the edges
/// make_shard_router assigns to `manifest.shard_id`. Stateful (round-robin
/// counts kept edges), so build one per pass and never reuse it.
EdgeFilter shard_ownership_filter(const ShardManifest& manifest);

/// A worker's unit of shuffle: manifest + shard sketch, persisted as one
/// snapshot file (object type 7).
struct ShardSnapshot {
  ShardManifest manifest;
  SubsampleSketch sketch;

  static constexpr SnapshotType kSnapshotType = SnapshotType::kShardSnapshot;

  /// Serializes the manifest fields then the nested sketch ('SHRD' section).
  void save(SnapshotWriter& writer) const;

  /// Restores a save()d shard; nullopt (reader error set) on any frame,
  /// range, or manifest-consistency failure.
  static std::optional<ShardSnapshot> load_snapshot(SnapshotReader& reader);
};

/// Checks a collected shard set is one coherent partition: non-empty, every
/// manifest agreeing on (shard_count, routing, router_seed), every shard id
/// 0..count-1 present exactly once, and every sketch built with identical
/// SketchParams. Each failure mode produces a distinct message in *error
/// (when non-null) naming the offending shard — the coordinator refuses to
/// merge rather than silently solving on a partial or mixed partition.
bool validate_shard_set(const std::vector<ShardSnapshot>& shards,
                        std::string* error = nullptr);

/// Reduces `sketches` to one by a fan-in tree: each level groups `fan_in`
/// consecutive sketches, merges each group left-to-right (one pool task per
/// group — groups touch disjoint sketches, so pool-parallel == serial bit
/// for bit), and repeats until one remains. fan_in >= 2; fan_in == 2 is the
/// classic pairwise tree. The input vector is consumed.
SubsampleSketch hierarchical_merge(std::vector<SubsampleSketch> sketches,
                                   std::size_t fan_in,
                                   ThreadPool* pool = nullptr);

/// validate_shard_set + hierarchical_merge over the shard sketches, in
/// ascending shard-id order (so the result is independent of collection
/// order). nullopt with *error set when validation fails.
std::optional<SubsampleSketch> merge_shard_set(std::vector<ShardSnapshot> shards,
                                               std::size_t fan_in,
                                               ThreadPool* pool = nullptr,
                                               std::string* error = nullptr);

class ShardedSketchBuilder {
 public:
  /// `params.dedupe_edges` must be true (merge requires it).
  ShardedSketchBuilder(SketchParams params, std::size_t shards,
                       ThreadPool* pool = nullptr);

  std::size_t shard_count() const { return shards_.size(); }

  /// Routes an edge to a specific shard (the distributed setting: whichever
  /// worker owns that part of the input).
  void update(std::size_t shard, const Edge& edge);

  /// Consumes a whole stream through the engine's partitioned fan-out
  /// (shard updates parallelized when a pool is given). `batch_edges` = 0
  /// picks the engine default.
  void consume(EdgeStream& stream, ShardRouting routing = ShardRouting::kRoundRobin,
               std::size_t batch_edges = 0);

  /// Per-worker peak space (what each machine pays before the reduce).
  std::size_t max_shard_space_words() const;

  /// Reduces all shards into one sketch (pairwise merge tree — the fan_in=2
  /// hierarchical_merge). The builder is consumed: shards are left empty.
  SubsampleSketch finalize();

 private:
  std::vector<SubsampleSketch> shards_;
  ThreadPool* pool_;
};

}  // namespace covstream
