#include "core/oracle_hardness.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace covstream {

PurificationInstance PurificationInstance::make(std::uint32_t n, std::uint32_t k,
                                                double eps, std::uint64_t seed) {
  COVSTREAM_CHECK(k >= 1 && k <= n);
  COVSTREAM_CHECK(eps > 0.0 && eps < 1.0);
  PurificationInstance instance;
  instance.n_ = n;
  instance.k_ = k;
  instance.eps_ = eps;
  instance.gold_.assign(n, false);
  Rng rng(seed);
  for (const std::uint32_t item : rng.sample_without_replacement(n, k)) {
    instance.gold_[item] = true;
  }
  return instance;
}

std::size_t PurificationInstance::gold_count(
    std::span<const std::uint32_t> items) const {
  std::size_t count = 0;
  for (const std::uint32_t item : items) {
    COVSTREAM_CHECK(item < n_);
    if (gold_[item]) ++count;
  }
  return count;
}

bool PurificationInstance::pure(std::span<const std::uint32_t> items) const {
  const double expectation =
      static_cast<double>(k_) * static_cast<double>(items.size()) / n_;
  const double slack =
      eps_ * (expectation + static_cast<double>(k_) * static_cast<double>(k_) / n_);
  const double gold = static_cast<double>(gold_count(items));
  return gold < expectation - slack || gold > expectation + slack;
}

double NoisyCoverageOracle::true_coverage(
    std::span<const std::uint32_t> items) const {
  if (items.empty()) return 0.0;
  const double n = instance_->n();
  const double k = instance_->k();
  return k + (n / k) * static_cast<double>(instance_->gold_count(items));
}

double NoisyCoverageOracle::query(std::span<const std::uint32_t> items) {
  ++queries_;
  if (items.empty()) return 0.0;
  if (instance_->pure(items)) {
    ++pure_hits_;
    return true_coverage(items);
  }
  return static_cast<double>(instance_->k()) + static_cast<double>(items.size());
}

double NoisyCoverageOracle::opt() const {
  return static_cast<double>(instance_->k()) + static_cast<double>(instance_->n());
}

AttackResult attack_random_subsets(const PurificationInstance& instance,
                                   std::size_t max_queries, std::uint64_t seed) {
  Rng rng(seed);
  NoisyCoverageOracle oracle(&instance);
  AttackResult result;
  std::vector<std::uint32_t> best;
  double best_value = -1.0;
  for (std::size_t q = 0; q < max_queries; ++q) {
    std::vector<std::uint32_t> candidate =
        rng.sample_without_replacement(instance.n(), instance.k());
    const double value = oracle.query(candidate);
    if (value > best_value) {
      best_value = value;
      best = std::move(candidate);
    }
  }
  result.queries = oracle.queries();
  result.pure_hits = oracle.pure_hits();
  result.best_ratio = oracle.true_coverage(best) / oracle.opt();
  return result;
}

AttackResult attack_greedy_oracle(const PurificationInstance& instance,
                                  std::uint64_t seed) {
  Rng rng(seed);
  NoisyCoverageOracle oracle(&instance);
  std::vector<std::uint32_t> chosen;
  std::vector<bool> used(instance.n(), false);
  // Evaluate items in a random scan order each round so flat oracle answers
  // produce a uniformly random pick (first-maximum tie break).
  for (std::uint32_t step = 0; step < instance.k(); ++step) {
    std::vector<std::uint32_t> order = rng.permutation(instance.n());
    std::uint32_t best_item = kInvalidSet;
    double best_value = -1.0;
    std::vector<std::uint32_t> candidate = chosen;
    candidate.push_back(0);
    for (const std::uint32_t item : order) {
      if (used[item]) continue;
      candidate.back() = item;
      const double value = oracle.query(candidate);
      if (value > best_value) {
        best_value = value;
        best_item = item;
      }
    }
    COVSTREAM_CHECK(best_item != kInvalidSet);
    used[best_item] = true;
    chosen.push_back(best_item);
  }
  AttackResult result;
  result.queries = oracle.queries();
  result.pure_hits = oracle.pure_hits();
  result.best_ratio = oracle.true_coverage(chosen) / oracle.opt();
  return result;
}

}  // namespace covstream
