#include "core/setcover_multipass.hpp"

#include <algorithm>
#include <cmath>

#include "core/greedy_on_sketch.hpp"
#include "core/sketch_ladder.hpp"
#include "sketch/substrate/flat_table.hpp"
#include "solve/cover_tracker.hpp"
#include "stream/stream_engine.hpp"
#include "util/log.hpp"

namespace covstream {
namespace {

/// Builds a SketchView straight from residual edges (set -> dense slot per
/// distinct element) so the final stage can reuse the shared solver engine.
SketchView view_from_edges(SetId num_sets, const std::vector<Edge>& edges) {
  SketchView view;
  view.num_sets = num_sets;
  view.p_star = 1.0;
  FlatElemTable slot_of;
  slot_of.reserve(edges.size());
  for (const Edge& edge : edges) {
    slot_of.find_or_insert(edge.elem, static_cast<std::uint32_t>(slot_of.size()));
  }
  view.num_retained = slot_of.size();
  view.set_offsets.assign(num_sets + 1, 0);
  for (const Edge& edge : edges) ++view.set_offsets[edge.set + 1];
  for (SetId s = 0; s < num_sets; ++s) view.set_offsets[s + 1] += view.set_offsets[s];
  view.set_slots.resize(edges.size());
  std::vector<std::size_t> cursor(view.set_offsets.begin(), view.set_offsets.end() - 1);
  for (const Edge& edge : edges) {
    view.set_slots[cursor[edge.set]++] = slot_of.find(edge.elem);
  }
  return view;
}

}  // namespace

MultipassResult streaming_setcover_multipass(EdgeStream& stream, SetId num_sets,
                                             ElemId num_elems,
                                             const MultipassOptions& options) {
  COVSTREAM_CHECK(options.rounds >= 1);
  const std::size_t r = options.rounds;
  MultipassResult result;
  result.bitmap_words = (num_elems + 63) / 64;

  CoverTracker covered(num_elems);
  std::vector<SetId> chosen;          // full solution so far
  std::vector<SetId> last_iteration;  // S_{i-1}, not yet marked into `covered`
  std::vector<bool> in_last(num_sets, false);
  auto set_last = [&](std::vector<SetId> family) {
    for (const SetId s : last_iteration) in_last[s] = false;
    last_iteration = std::move(family);
    for (const SetId s : last_iteration) in_last[s] = true;
  };

  // lambda = m^{-1/(2+r)}, clamped to Algorithm 5's domain (0, 1/e].
  double lambda = std::pow(static_cast<double>(std::max<ElemId>(2, num_elems)),
                           -1.0 / (2.0 + static_cast<double>(r)));
  if (lambda > 1.0 / std::exp(1.0)) {
    COVSTREAM_WARN("multipass: m too small for r; clamping lambda to 1/e");
    lambda = 1.0 / std::exp(1.0);
  }
  result.lambda = lambda;

  OutliersOptions iter_options;
  iter_options.stream = options.stream;
  iter_options.lambda = lambda;
  iter_options.c_confidence =
      options.c_confidence * std::max<double>(1.0, static_cast<double>(r) - 1.0);
  iter_options.pool = options.pool;

  std::size_t sketch_words_peak = 0;
  const StreamEngine engine({options.stream.batch_edges, nullptr});

  for (std::size_t iteration = 1; iteration < r; ++iteration) {
    if (!options.merge_mark_pass && !last_iteration.empty()) {
      // Dedicated marking pass for S_{i-1}.
      engine.run(stream, {}, [&](std::span<const Edge> chunk) {
        for (const Edge& edge : chunk) {
          if (in_last[edge.set]) covered.mark(edge.elem);
        }
      });
      set_last({});
    }

    const OutliersPlan plan = plan_outliers(num_sets, iter_options);
    std::vector<SketchParams> rung_params;
    rung_params.reserve(plan.guesses.size());
    for (const SubmoduleParams& sub : plan.guesses) {
      rung_params.push_back(
          submodule_sketch_params(num_sets, sub, iter_options.stream, plan.delta_pp));
    }
    SketchLadder ladder(std::move(rung_params), options.pool);

    if (options.merge_mark_pass) {
      // Mark S_{i-1} and feed uncovered edges in the same pass; the engine
      // evaluates this mask once per chunk, before any rung runs. Purge
      // just-covered retained elements afterwards.
      ladder.consume(
          stream,
          [&](const Edge& edge) {
            if (covered.test(edge.elem)) return false;
            if (in_last[edge.set]) {
              covered.mark(edge.elem);
              return false;
            }
            return true;
          },
          options.stream.batch_edges);
      for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
        ladder.rung(rung).purge([&](ElemId elem) { return covered.test(elem); });
      }
      set_last({});
    } else {
      ladder.consume(
          stream, [&](const Edge& edge) { return !covered.test(edge.elem); },
          options.stream.batch_edges);
    }
    sketch_words_peak = std::max(sketch_words_peak, ladder.peak_space_words());

    // Evaluate guesses in increasing k' (Algorithm 5's acceptance loop).
    std::vector<SetId> picked;
    for (std::size_t g = 0; g < plan.guesses.size(); ++g) {
      const SubmoduleResult sub =
          setcover_submodule_evaluate(ladder.rung(g), plan.guesses[g],
                                      options.pool);
      if (sub.feasible) {
        picked = sub.solution;
        break;
      }
    }
    result.picked_per_iteration.push_back(picked.size());
    chosen.insert(chosen.end(), picked.begin(), picked.end());
    set_last(std::move(picked));
  }

  // Final stage: mark S_{r-1}, store G_r's residual edges, cover exactly.
  std::vector<Edge> residual;
  engine.run(stream, {}, [&](std::span<const Edge> chunk) {
    for (const Edge& edge : chunk) {
      if (covered.test(edge.elem)) continue;
      if (in_last[edge.set]) {
        covered.mark(edge.elem);
        continue;
      }
      residual.push_back(edge);
    }
  });
  // Purge edges whose element got covered later in the pass.
  std::erase_if(residual, [&](const Edge& edge) { return covered.test(edge.elem); });
  result.residual_edges = residual.size();
  result.residual_words = residual.size() * 2;  // ElemId + SetId per stored edge

  const SketchView residual_view = view_from_edges(num_sets, residual);
  Solver final_solver(residual_view, options.pool);
  const GreedyResult final_greedy = final_solver.cover_target(
      num_sets, std::max<std::size_t>(1, residual_view.num_retained));
  chosen.insert(chosen.end(), final_greedy.solution.begin(),
                final_greedy.solution.end());
  result.picked_per_iteration.push_back(final_greedy.solution.size());

  // Deduplicate while preserving pick order.
  std::vector<bool> seen(num_sets, false);
  std::vector<SetId> deduped;
  deduped.reserve(chosen.size());
  for (const SetId s : chosen) {
    if (!seen[s]) {
      seen[s] = true;
      deduped.push_back(s);
    }
  }
  result.solution = std::move(deduped);
  result.covered_everything =
      final_greedy.covered == residual_view.num_retained;
  result.passes = stream.passes_started();
  result.sketch_words = sketch_words_peak;
  result.space_words = result.sketch_words + result.bitmap_words +
                       result.residual_words;
  return result;
}

}  // namespace covstream
