// Parameters of the H<=n(k, eps, delta'') sketch (Definition 2.1).
//
// The paper's edge budget
//     B = 24 n delta log(1/eps) log n / ((1-eps) eps^3),
//     delta = delta'' * log(log_{1/(1-eps)} m),
// is what the proofs need; at laptop scale it often exceeds the whole input,
// making every run trivially exact. The sketch guarantee is monotone in B,
// so we expose three budget modes (DESIGN.md §2.2):
//   * Paper     — the literal formula (used by tests that verify the formula
//                 itself, and available for full-fidelity runs);
//   * Practical — c * n * log2(n+2) * log2(2/eps) (still O~(n), independent
//                 of m; the default for benches);
//   * Explicit  — caller-chosen budget (used for sweeps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sketch/substrate/snapshot.hpp"
#include "util/common.hpp"

namespace covstream {

enum class BudgetMode { kPaper, kPractical, kExplicit };

std::string to_string(BudgetMode mode);

struct SketchParams {
  SetId num_sets = 0;        // n (known up front, as in the paper)
  std::uint32_t k = 1;       // solution size the sketch is tuned for
  double eps = 0.1;          // epsilon in (0, 1]
  double delta_pp = 1.0;     // delta'' >= 1 (failure-probability knob)
  std::uint64_t elems_hint = 1u << 20;  // m used only inside Paper-mode delta

  BudgetMode budget_mode = BudgetMode::kPractical;
  double practical_c = 4.0;            // c in the Practical formula
  std::size_t explicit_budget = 0;     // Explicit mode budget

  bool enforce_degree_cap = true;  // ablation switch (H'p vs Hp)
  bool dedupe_edges = true;        // tolerate duplicate (set, elem) arrivals
  std::uint64_t hash_seed = 0x9b97f4a7c15ULL;  // the random function h

  /// Per-element degree cap of H'p: ceil(n * ln(1/eps) / (eps * k)),
  /// clamped to >= 1. Effectively infinite when enforce_degree_cap is false.
  std::size_t degree_cap() const;

  /// Edge budget B per the selected mode (>= n in all modes).
  std::size_t edge_budget() const;

  /// The paper's delta = delta'' * log(log_{1/(1-eps)} m).
  double paper_delta() const;

  /// One range predicate shared by validate() (abort on violation) and
  /// load() (fail the reader on violation) so the two cannot drift.
  bool is_valid() const;

  void validate() const;

  /// Serializes every field (docs/FORMATS.md §3 'PRMS') so a loaded sketch
  /// reconstructs the exact hash function, caps, and budget it was built
  /// with — params are the part of sketch identity that code cannot rederive.
  void save(SnapshotWriter& writer) const;

  /// Restores save()d params in place; validates ranges (the same checks as
  /// validate(), but failing the reader instead of aborting the process).
  bool load(SnapshotReader& reader);

  /// Field-wise equality — the coordinator's shard-coherence check: two
  /// shards are mergeable only if every parameter (seed, budget, caps, all
  /// of it) matches, so a silent partial merge can never happen.
  friend bool operator==(const SketchParams&, const SketchParams&) = default;
};

}  // namespace covstream
