#include "core/lower_bound.hpp"

#include "core/subsample_sketch.hpp"
#include "util/rng.hpp"

namespace covstream {
namespace {

/// Does any set cover both elements 0 and 1 among the given per-set flags?
bool any_set_covers_both(const std::vector<bool>& has_a,
                         const std::vector<bool>& has_b) {
  for (std::size_t i = 0; i < has_a.size(); ++i) {
    if (has_a[i] && has_b[i]) return true;
  }
  return false;
}

}  // namespace

bool sketch_decides_intersection(const DisjointnessInstance& instance,
                                 std::size_t edge_budget, std::uint64_t seed) {
  SketchParams params;
  params.num_sets = instance.graph.num_sets();
  params.k = 1;
  params.eps = 0.5;
  params.budget_mode = BudgetMode::kExplicit;
  params.explicit_budget = edge_budget;
  params.enforce_degree_cap = false;  // k=1 cap is huge anyway; keep it exact
  params.hash_seed = seed;
  SubsampleSketch sketch(params);
  for (const Edge& edge : instance.alice_then_bob_stream) sketch.update(edge);

  const auto sets_a = sketch.sets_of(0);
  const auto sets_b = sketch.sets_of(1);
  // Opt_1 = 2 iff some set reaches both retained elements.
  std::vector<bool> touches_a(instance.graph.num_sets(), false);
  for (const SetId s : sets_a) touches_a[s] = true;
  for (const SetId t : sets_b) {
    if (touches_a[t]) return true;
  }
  return false;
}

bool reservoir_decides_intersection(const DisjointnessInstance& instance,
                                    std::size_t edge_budget, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> reservoir;
  reservoir.reserve(edge_budget);
  std::size_t seen = 0;
  for (const Edge& edge : instance.alice_then_bob_stream) {
    ++seen;
    if (reservoir.size() < edge_budget) {
      reservoir.push_back(edge);
    } else {
      const std::size_t j = rng.next_below(static_cast<std::uint64_t>(seen));
      if (j < edge_budget) reservoir[j] = edge;
    }
  }
  std::vector<bool> has_a(instance.graph.num_sets(), false);
  std::vector<bool> has_b(instance.graph.num_sets(), false);
  for (const Edge& edge : reservoir) {
    (edge.elem == 0 ? has_a : has_b)[edge.set] = true;
  }
  return any_set_covers_both(has_a, has_b);
}

DisjointnessErrors disjointness_error_rate(std::uint32_t bits, double density,
                                           std::size_t edge_budget,
                                           std::size_t trials, std::uint64_t seed) {
  Rng rng(seed);
  DisjointnessErrors errors;
  errors.trials = trials;
  std::size_t sketch_wrong = 0;
  std::size_t reservoir_wrong = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool intersecting = (t % 2) == 0;
    const DisjointnessInstance instance =
        make_disjointness(bits, intersecting, density, rng.next());
    if (sketch_decides_intersection(instance, edge_budget, rng.next()) !=
        intersecting) {
      ++sketch_wrong;
    }
    if (reservoir_decides_intersection(instance, edge_budget, rng.next()) !=
        intersecting) {
      ++reservoir_wrong;
    }
  }
  errors.sketch_error =
      static_cast<double>(sketch_wrong) / static_cast<double>(trials);
  errors.reservoir_error =
      static_cast<double>(reservoir_wrong) / static_cast<double>(trials);
  return errors;
}

}  // namespace covstream
