#include "core/distributed.hpp"

#include <utility>

#include "parallel/parallel_for.hpp"

namespace covstream {

ShardedSketchBuilder::ShardedSketchBuilder(SketchParams params, std::size_t shards,
                                           ThreadPool* pool)
    : pool_(pool) {
  COVSTREAM_CHECK(shards >= 1);
  COVSTREAM_CHECK(params.dedupe_edges);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(params);
  }
}

void ShardedSketchBuilder::update(std::size_t shard, const Edge& edge) {
  COVSTREAM_CHECK(shard < shards_.size());
  shards_[shard].update(edge);
}

void ShardedSketchBuilder::consume(EdgeStream& stream) {
  // Deal edges into per-shard buffers, then flush the buffers to their
  // shards (one task per shard: shard state is never shared across tasks).
  constexpr std::size_t kChunk = 1 << 15;
  std::vector<std::vector<Edge>> buffers(shards_.size());
  std::size_t dealt = 0;
  auto flush = [&] {
    parallel_for_blocked(
        pool_, shards_.size(),
        [this, &buffers](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            for (const Edge& edge : buffers[s]) shards_[s].update(edge);
            buffers[s].clear();
          }
        },
        /*grain=*/1);
  };
  stream.reset();
  Edge edge;
  while (stream.next(edge)) {
    buffers[dealt % shards_.size()].push_back(edge);
    if (++dealt % (kChunk * shards_.size()) == 0) flush();
  }
  flush();
}

std::size_t ShardedSketchBuilder::max_shard_space_words() const {
  std::size_t peak = 0;
  for (const SubsampleSketch& shard : shards_) {
    peak = std::max(peak, shard.peak_space_words());
  }
  return peak;
}

SubsampleSketch ShardedSketchBuilder::finalize() {
  COVSTREAM_CHECK(!shards_.empty());
  // Reduction tree: merge pairs until one sketch remains (mirrors the
  // log-depth combine of the distributed setting).
  while (shards_.size() > 1) {
    std::vector<SubsampleSketch> next;
    next.reserve((shards_.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < shards_.size(); i += 2) {
      shards_[i].merge_from(shards_[i + 1]);
      next.push_back(std::move(shards_[i]));
    }
    if (shards_.size() % 2 == 1) next.push_back(std::move(shards_.back()));
    shards_ = std::move(next);
  }
  SubsampleSketch result = std::move(shards_.front());
  shards_.clear();
  return result;
}

}  // namespace covstream
