#include "core/distributed.hpp"

#include <algorithm>
#include <utility>

namespace covstream {

std::string to_string(ShardRouting routing) {
  switch (routing) {
    case ShardRouting::kRoundRobin: return "rr";
    case ShardRouting::kByElementHash: return "hash";
  }
  return "?";
}

std::optional<ShardRouting> parse_shard_routing(std::string_view text) {
  if (text == "rr") return ShardRouting::kRoundRobin;
  if (text == "hash") return ShardRouting::kByElementHash;
  return std::nullopt;
}

std::uint64_t shard_router_seed(const SketchParams& params) {
  return params.hash_seed ^ 0x5eedfeedULL;
}

StreamEngine::Router make_shard_router(ShardRouting routing,
                                       std::size_t shard_count,
                                       std::uint64_t router_seed) {
  COVSTREAM_CHECK(shard_count >= 1);
  return routing == ShardRouting::kRoundRobin
             ? StreamEngine::round_robin(shard_count)
             : StreamEngine::by_element_hash(shard_count, router_seed);
}

EdgeFilter shard_ownership_filter(const ShardManifest& manifest) {
  COVSTREAM_CHECK(manifest.shard_id < manifest.shard_count);
  // The counter advances on EVERY edge the filter sees — exactly the kept
  // index run_partitioned would feed the router with no filter installed —
  // so W workers filtering the same stream partition it identically to one
  // in-process partitioned pass.
  return [router = make_shard_router(manifest.routing, manifest.shard_count,
                                     manifest.router_seed),
          shard = static_cast<std::size_t>(manifest.shard_id),
          kept = std::size_t{0}](const Edge& edge) mutable {
    return router(edge, kept++) == shard;
  };
}

void ShardSnapshot::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('S', 'H', 'R', 'D'));
  writer.u32(manifest.shard_id);
  writer.u32(manifest.shard_count);
  writer.u32(static_cast<std::uint32_t>(manifest.routing));
  writer.u64(manifest.router_seed);
  writer.u64(manifest.edges_ingested);
  sketch.save(writer);
  writer.end_section();
}

std::optional<ShardSnapshot> ShardSnapshot::load_snapshot(SnapshotReader& reader) {
  if (!reader.begin_section(snapshot_tag('S', 'H', 'R', 'D'))) return std::nullopt;
  ShardManifest manifest;
  manifest.shard_id = reader.u32();
  manifest.shard_count = reader.u32();
  const std::uint32_t routing = reader.u32();
  manifest.router_seed = reader.u64();
  manifest.edges_ingested = reader.u64();
  if (manifest.shard_count == 0) {
    reader.fail("shard manifest: shard count is zero");
    return std::nullopt;
  }
  if (manifest.shard_id >= manifest.shard_count) {
    reader.fail("shard manifest: shard id out of range");
    return std::nullopt;
  }
  if (routing > static_cast<std::uint32_t>(ShardRouting::kByElementHash)) {
    reader.fail("shard manifest: unknown routing mode");
    return std::nullopt;
  }
  manifest.routing = static_cast<ShardRouting>(routing);
  std::optional<SubsampleSketch> sketch = SubsampleSketch::load_snapshot(reader);
  if (!sketch) return std::nullopt;
  if (manifest.router_seed != shard_router_seed(sketch->params())) {
    reader.fail("shard manifest: router seed does not match the sketch seed");
    return std::nullopt;
  }
  if (!reader.end_section()) return std::nullopt;
  return ShardSnapshot{manifest, std::move(*sketch)};
}

bool validate_shard_set(const std::vector<ShardSnapshot>& shards,
                        std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (shards.empty()) return fail("shard set is empty: no shard snapshots to merge");
  const ShardManifest& head = shards.front().manifest;
  const SketchParams& head_params = shards.front().sketch.params();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const ShardManifest& m = shards[i].manifest;
    if (m.shard_count != head.shard_count) {
      return fail("shard-count mismatch: shard " + std::to_string(m.shard_id) +
                  " declares " + std::to_string(m.shard_count) +
                  " shards but shard " + std::to_string(head.shard_id) +
                  " declares " + std::to_string(head.shard_count));
    }
    if (m.routing != head.routing) {
      return fail("routing mismatch: shard " + std::to_string(m.shard_id) +
                  " used '" + to_string(m.routing) + "' but shard " +
                  std::to_string(head.shard_id) + " used '" +
                  to_string(head.routing) + "'");
    }
    if (m.router_seed != head.router_seed) {
      return fail("router-seed mismatch: shard " + std::to_string(m.shard_id) +
                  " partitioned with a different seed than shard " +
                  std::to_string(head.shard_id));
    }
    if (!(shards[i].sketch.params() == head_params)) {
      return fail("params mismatch: shard " + std::to_string(m.shard_id) +
                  " was built with different SketchParams than shard " +
                  std::to_string(head.shard_id) + " (refusing to merge)");
    }
  }
  if (shards.size() > head.shard_count) {
    return fail("too many shards: " + std::to_string(shards.size()) +
                " snapshots for a " + std::to_string(head.shard_count) +
                "-shard partition");
  }
  std::vector<bool> seen(head.shard_count, false);
  for (const ShardSnapshot& shard : shards) {
    if (seen[shard.manifest.shard_id]) {
      return fail("duplicate shard id " + std::to_string(shard.manifest.shard_id) +
                  ": two snapshots claim the same shard");
    }
    seen[shard.manifest.shard_id] = true;
  }
  for (std::uint32_t id = 0; id < head.shard_count; ++id) {
    if (!seen[id]) {
      return fail("missing shard " + std::to_string(id) + " of " +
                  std::to_string(head.shard_count) + " (have " +
                  std::to_string(shards.size()) + " snapshots)");
    }
  }
  return true;
}

SubsampleSketch hierarchical_merge(std::vector<SubsampleSketch> sketches,
                                   std::size_t fan_in, ThreadPool* pool) {
  COVSTREAM_CHECK(!sketches.empty());
  COVSTREAM_CHECK(fan_in >= 2);
  while (sketches.size() > 1) {
    const std::size_t groups = (sketches.size() + fan_in - 1) / fan_in;
    const auto merge_group = [&sketches, fan_in](std::size_t g) {
      const std::size_t begin = g * fan_in;
      const std::size_t end = std::min(begin + fan_in, sketches.size());
      for (std::size_t i = begin + 1; i < end; ++i) {
        sketches[begin].merge_from(sketches[i]);
      }
    };
    if (pool != nullptr && groups > 1) {
      // Groups touch disjoint sketches, so pool fan-out == serial bit for
      // bit (the §5.5 disjoint-state argument).
      for (std::size_t g = 0; g < groups; ++g) {
        pool->submit([&merge_group, g] { merge_group(g); });
      }
      pool->wait_idle();
    } else {
      for (std::size_t g = 0; g < groups; ++g) merge_group(g);
    }
    std::vector<SubsampleSketch> next;
    next.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      next.push_back(std::move(sketches[g * fan_in]));
    }
    sketches = std::move(next);
  }
  return std::move(sketches.front());
}

std::optional<SubsampleSketch> merge_shard_set(std::vector<ShardSnapshot> shards,
                                               std::size_t fan_in,
                                               ThreadPool* pool,
                                               std::string* error) {
  if (!validate_shard_set(shards, error)) return std::nullopt;
  // Ascending shard-id order makes the reduction independent of the order
  // the coordinator happened to collect the files in.
  std::sort(shards.begin(), shards.end(),
            [](const ShardSnapshot& a, const ShardSnapshot& b) {
              return a.manifest.shard_id < b.manifest.shard_id;
            });
  std::vector<SubsampleSketch> sketches;
  sketches.reserve(shards.size());
  for (ShardSnapshot& shard : shards) {
    sketches.push_back(std::move(shard.sketch));
  }
  return hierarchical_merge(std::move(sketches), fan_in, pool);
}

ShardedSketchBuilder::ShardedSketchBuilder(SketchParams params, std::size_t shards,
                                           ThreadPool* pool)
    : pool_(pool) {
  COVSTREAM_CHECK(shards >= 1);
  COVSTREAM_CHECK(params.dedupe_edges);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(params);
  }
}

void ShardedSketchBuilder::update(std::size_t shard, const Edge& edge) {
  COVSTREAM_CHECK(shard < shards_.size());
  shards_[shard].update(edge);
}

void ShardedSketchBuilder::consume(EdgeStream& stream, ShardRouting routing,
                                   std::size_t batch_edges) {
  const StreamEngine engine({batch_edges, pool_});
  const StreamEngine::Router router =
      make_shard_router(routing, shards_.size(),
                        shard_router_seed(shards_.front().params()));
  engine.run_partitioned(stream, {}, shards_.size(), router,
                         [this](std::size_t s, std::span<const Edge> chunk) {
                           shards_[s].update_chunk(chunk);
                         });
}

std::size_t ShardedSketchBuilder::max_shard_space_words() const {
  std::size_t peak = 0;
  for (const SubsampleSketch& shard : shards_) {
    peak = std::max(peak, shard.peak_space_words());
  }
  return peak;
}

SubsampleSketch ShardedSketchBuilder::finalize() {
  // The fan_in=2 hierarchical tree groups shards pairwise level by level —
  // exactly the reduction order the pre-distributed builder used, so
  // finalize() output is unchanged. The pool parallelizes groups (disjoint
  // state, bit-for-bit equal to serial).
  SubsampleSketch result = hierarchical_merge(std::move(shards_), 2, pool_);
  shards_.clear();
  return result;
}

}  // namespace covstream
