#include "core/distributed.hpp"

#include <utility>

namespace covstream {

ShardedSketchBuilder::ShardedSketchBuilder(SketchParams params, std::size_t shards,
                                           ThreadPool* pool)
    : pool_(pool) {
  COVSTREAM_CHECK(shards >= 1);
  COVSTREAM_CHECK(params.dedupe_edges);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(params);
  }
}

void ShardedSketchBuilder::update(std::size_t shard, const Edge& edge) {
  COVSTREAM_CHECK(shard < shards_.size());
  shards_[shard].update(edge);
}

void ShardedSketchBuilder::consume(EdgeStream& stream, ShardRouting routing,
                                   std::size_t batch_edges) {
  const StreamEngine engine({batch_edges, pool_});
  // The partition seed rides on the sketch hash seed so a routing choice is
  // reproducible per run but independent of the element-admission hash.
  const StreamEngine::Router router =
      routing == ShardRouting::kRoundRobin
          ? StreamEngine::round_robin(shards_.size())
          : StreamEngine::by_element_hash(shards_.size(),
                                          shards_.front().params().hash_seed ^
                                              0x5eedfeedULL);
  engine.run_partitioned(stream, {}, shards_.size(), router,
                         [this](std::size_t s, std::span<const Edge> chunk) {
                           shards_[s].update_chunk(chunk);
                         });
}

std::size_t ShardedSketchBuilder::max_shard_space_words() const {
  std::size_t peak = 0;
  for (const SubsampleSketch& shard : shards_) {
    peak = std::max(peak, shard.peak_space_words());
  }
  return peak;
}

SubsampleSketch ShardedSketchBuilder::finalize() {
  COVSTREAM_CHECK(!shards_.empty());
  // Reduction tree: merge pairs until one sketch remains (mirrors the
  // log-depth combine of the distributed setting).
  while (shards_.size() > 1) {
    std::vector<SubsampleSketch> next;
    next.reserve((shards_.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < shards_.size(); i += 2) {
      shards_[i].merge_from(shards_[i + 1]);
      next.push_back(std::move(shards_[i]));
    }
    if (shards_.size() % 2 == 1) next.push_back(std::move(shards_.back()));
    shards_ = std::move(next);
  }
  SubsampleSketch result = std::move(shards_.front());
  shards_.clear();
  return result;
}

}  // namespace covstream
