// Algorithm 6 / Theorem 3.4: r-pass (1+eps) log m set cover in
// O~(n m^{3/(2+r)} + m) space, edge arrival.
//
// Each of the r-1 iterations runs Algorithm 5 with lambda = m^{-1/(2+r)} on
// the yet-uncovered subgraph G_i, then a final stage stores G_r's residual
// edges outright and covers them with exact greedy. Covered elements are
// tracked in an m-bit bitmap — the "+m" term of the space bound
// (DESIGN.md §5.3).
//
// Pass accounting: the paper folds the covered-element marking into the
// next sketch pass ("virtually construct G_i"). We support both:
//  * merge_mark_pass = true  — marking happens inside the sketch pass and
//    covered elements are purged from the sketches at end of pass (still a
//    valid, slightly smaller sketch of G_i); r passes total.
//  * merge_mark_pass = false — a dedicated marking pass per iteration;
//    2(r-1) passes total, sketches see exactly G_i.
// Both satisfy the approximation guarantee; the ablation bench compares them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/setcover_outliers.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"

namespace covstream {

struct MultipassOptions {
  StreamingOptions stream;
  std::size_t rounds = 3;  // the paper's r, in [1, log m]
  double c_confidence = 1.0;
  bool merge_mark_pass = true;
  ThreadPool* pool = nullptr;
};

struct MultipassResult {
  std::vector<SetId> solution;
  bool covered_everything = false;
  std::size_t passes = 0;
  double lambda = 0.0;             // realized m^{-1/(2+r)} (clamped to <= 1/e)
  std::vector<std::size_t> picked_per_iteration;  // r-1 entries + final stage
  std::size_t residual_edges = 0;  // |G_r| actually stored
  std::size_t space_words = 0;     // sketches + bitmap + residual (peak)
  std::size_t sketch_words = 0;
  std::size_t bitmap_words = 0;
  std::size_t residual_words = 0;
};

/// Runs Algorithm 6 over `stream`. `num_elems` is m; element ids must be
/// dense in [0, m) (required by the covered bitmap, as in the paper's +m
/// space term).
MultipassResult streaming_setcover_multipass(EdgeStream& stream, SetId num_sets,
                                             ElemId num_elems,
                                             const MultipassOptions& options);

}  // namespace covstream
