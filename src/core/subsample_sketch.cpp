#include "core/subsample_sketch.hpp"

#include <algorithm>

#include "hash/simd/kernels.hpp"
#include "stream/stream_engine.hpp"

namespace covstream {

std::size_t SketchView::neighborhood_size(std::span<const SetId> family) const {
  BitVec touched(num_retained);
  std::size_t count = 0;
  for (const SetId set : family) {
    for (const std::uint32_t slot : slots_of(set)) {
      if (touched.set_if_clear(slot)) ++count;
    }
  }
  return count;
}

double SketchView::estimate_coverage(std::span<const SetId> family) const {
  COVSTREAM_CHECK(p_star > 0.0);
  return static_cast<double>(neighborhood_size(family)) / p_star;
}

SubsampleSketch::SubsampleSketch(SketchParams params)
    : params_((params.validate(), params)),
      hash_(params_.hash_seed),
      degree_cap_(params_.degree_cap()),
      edge_budget_(params_.edge_budget()),
      core_(degree_cap_, edge_budget_, ~0ULL, kBaseSpaceWords) {}

void SubsampleSketch::update(const Edge& edge) {
  COVSTREAM_CHECK(edge.set < params_.num_sets);
  bool created = false;
  const std::uint32_t slot = core_.admit(edge.elem, hash_(edge.elem), created);
  core_.note_peak();
  if (slot == MinHashCore<std::uint64_t>::kNoSlot) return;  // evicted earlier
  absorb_admitted(slot, edge.set);
}

void SubsampleSketch::update_chunk(std::span<const Edge> edges) {
  // One fused kernel sweep per chunk (hash/simd/kernels.hpp, DESIGN.md
  // §5.11): elem extraction off the 16-byte Edge stride, the set bounds
  // check, and the mix64 hash in a single pass. Both admission regimes run
  // off the precomputed spans — admit_batch's dense sweep covers the
  // unsaturated case (and its live cutoff check keeps a mid-chunk
  // saturation exact), its count/compact pre-filter the saturated one.
  elem_scratch_.resize(edges.size());
  key_scratch_.resize(edges.size());
  if (!simd::kernels().hash_edges_u64(edges.data(), elem_scratch_.data(),
                                      key_scratch_.data(), edges.size(),
                                      hash_.salt(), params_.num_sets)) {
    // The fused sweep only reports THAT a set was out of bounds; re-run the
    // per-edge check to fail on the offending edge.
    for (const Edge& edge : edges) {
      COVSTREAM_CHECK(edge.set < params_.num_sets);
    }
  }
  update_chunk_with_keys(edges, elem_scratch_, key_scratch_);
}

void SubsampleSketch::update_chunk_with_keys(std::span<const Edge> edges,
                                             std::span<const ElemId> elems,
                                             std::span<const std::uint64_t> keys) {
  COVSTREAM_CHECK(edges.size() == keys.size());
  core_.admit_batch(elems, keys,
                    [this, edges](std::size_t i, std::uint32_t slot, bool) {
                      absorb_admitted(slot, edges[i].set);
                    });
  // One standing-footprint observation per chunk: rejected edges never move
  // the counter, so this reproduces the historical after-every-edge sample.
  core_.note_peak();
}

void SubsampleSketch::update_candidates_with_keys(
    std::span<const Edge> edges, std::span<const ElemId> elems,
    std::span<const std::uint64_t> keys,
    std::span<const std::uint32_t> candidates) {
  COVSTREAM_CHECK(edges.size() == keys.size());
  core_.admit_selected(elems, keys, candidates,
                       [this, edges](std::size_t i, std::uint32_t slot, bool) {
                         absorb_admitted(slot, edges[i].set);
                       });
  core_.note_peak();
}

void SubsampleSketch::consume(EdgeStream& stream, std::size_t batch_edges) {
  const StreamEngine engine({batch_edges, nullptr});
  engine.run(stream, {},
             [this](std::span<const Edge> chunk) { update_chunk(chunk); });
}

SubsampleSketch SubsampleSketch::build_offline(const CoverageInstance& instance,
                                               SketchParams params) {
  // Algorithm 1: visit elements in increasing hash order, adding each with at
  // most degree_cap of its edges, stopping at the budget (maximal prefix).
  SubsampleSketch sketch(params);
  const Mix64Hash hash(params.hash_seed);
  std::vector<std::pair<std::uint64_t, ElemId>> order;
  order.reserve(instance.num_elems());
  for (ElemId e = 0; e < instance.num_elems(); ++e) {
    if (instance.elem_degree(e) > 0) order.emplace_back(hash(e), e);
  }
  std::sort(order.begin(), order.end());
  std::vector<SetId> capped;
  for (const auto& [h, elem] : order) {
    const auto sets = instance.sets_of(elem);
    const std::size_t take = std::min(sets.size(), sketch.degree_cap_);
    if (sketch.core_.stored_edges() + take > sketch.edge_budget_ &&
        sketch.core_.live_elements() >= 1) {
      sketch.core_.set_cutoff(h);
      break;
    }
    capped.assign(sets.begin(), sets.begin() + take);
    std::sort(capped.begin(), capped.end());
    const std::uint32_t slot = sketch.core_.create_slot(elem, h);
    sketch.core_.assign_edges(slot, capped);
  }
  sketch.core_.note_peak();
  return sketch;
}

double SubsampleSketch::p_star() const {
  if (!saturated()) return 1.0;
  // Largest retained hash; an emptied (fully evicted) sketch reports the
  // cutoff itself.
  if (core_.live_elements() == 0) return hash_to_unit(core_.cutoff());
  return hash_to_unit(core_.max_live_key());
}

std::span<const SetId> SubsampleSketch::sets_of(ElemId elem) const {
  const std::uint32_t slot = core_.find(elem);
  if (slot == MinHashCore<std::uint64_t>::kNoSlot) return {};
  return core_.edges_of(slot);
}

bool SubsampleSketch::is_retained(ElemId elem) const {
  return core_.find(elem) != MinHashCore<std::uint64_t>::kNoSlot;
}

void SubsampleSketch::merge_from(const SubsampleSketch& other) {
  COVSTREAM_CHECK(params_.hash_seed == other.params_.hash_seed);
  COVSTREAM_CHECK(params_.num_sets == other.params_.num_sets);
  COVSTREAM_CHECK(degree_cap_ == other.degree_cap_);
  COVSTREAM_CHECK(edge_budget_ == other.edge_budget_);
  COVSTREAM_CHECK(params_.dedupe_edges && other.params_.dedupe_edges);

  core_.merge_from(other.core_);
  core_.enforce_budget();
  core_.note_peak();
}

SketchView SubsampleSketch::view() const {
  SketchView view;
  view.num_sets = params_.num_sets;
  view.p_star = p_star();
  view.num_retained = core_.build_csr(params_.num_sets, view.set_offsets,
                                      view.set_slots, [](std::uint32_t) {});
  return view;
}

void SubsampleSketch::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('S', 'K', 'C', 'H'));
  params_.save(writer);
  core_.save(writer);
  writer.end_section();
}

std::optional<SubsampleSketch> SubsampleSketch::load_snapshot(
    SnapshotReader& reader) {
  if (!reader.begin_section(snapshot_tag('S', 'K', 'C', 'H'))) return std::nullopt;
  SketchParams params;
  if (!params.load(reader)) return std::nullopt;
  // Construct from the saved params (rebuilding hash/cap/budget), then let
  // the core replace its state — core load cross-checks the derived
  // admission parameters against the serialized ones.
  SubsampleSketch sketch(params);
  if (!sketch.core_.load(reader, params.num_sets) || !reader.end_section()) {
    return std::nullopt;
  }
  return sketch;
}

double SubsampleSketch::estimate_coverage(std::span<const SetId> family) const {
  // Count retained elements covered by the family without building the view.
  std::vector<bool> in_family(params_.num_sets, false);
  for (const SetId set : family) {
    COVSTREAM_CHECK(set < params_.num_sets);
    in_family[set] = true;
  }
  std::size_t covered = 0;
  for (std::uint32_t slot = 0; slot < core_.slot_count(); ++slot) {
    if (!core_.alive(slot)) continue;
    for (const SetId set : core_.edges_of(slot)) {
      if (in_family[set]) {
        ++covered;
        break;
      }
    }
  }
  const double p = p_star();
  COVSTREAM_CHECK(p > 0.0);
  return static_cast<double>(covered) / p;
}

}  // namespace covstream
