#include "core/subsample_sketch.hpp"

#include <algorithm>

namespace covstream {

std::size_t SketchView::neighborhood_size(std::span<const SetId> family) const {
  BitVec touched(num_retained);
  std::size_t count = 0;
  for (const SetId set : family) {
    for (const std::uint32_t slot : slots_of(set)) {
      if (touched.set_if_clear(slot)) ++count;
    }
  }
  return count;
}

double SketchView::estimate_coverage(std::span<const SetId> family) const {
  COVSTREAM_CHECK(p_star > 0.0);
  return static_cast<double>(neighborhood_size(family)) / p_star;
}

SubsampleSketch::SubsampleSketch(SketchParams params)
    : params_(params), hash_(params.hash_seed) {
  params_.validate();
  degree_cap_ = params_.degree_cap();
  edge_budget_ = params_.edge_budget();
}

void SubsampleSketch::update(const Edge& edge) {
  COVSTREAM_CHECK(edge.set < params_.num_sets);
  const std::uint64_t h = hash_(edge.elem);
  if (h >= cutoff_hash_) return;  // element evicted earlier (or would be)

  auto it = slot_of_.find(edge.elem);
  std::uint32_t slot_index;
  if (it == slot_of_.end()) {
    if (free_slots_.empty()) {
      slot_index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot_index = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& slot = slots_[slot_index];
    slot.elem = edge.elem;
    slot.hash = h;
    slot.alive = true;
    slot.sets.clear();
    slot_of_.emplace(edge.elem, slot_index);
    by_hash_.emplace(h, slot_index);
    ++live_elements_;
  } else {
    slot_index = it->second;
  }

  Slot& slot = slots_[slot_index];
  if (slot.sets.size() >= degree_cap_) return;  // H'p degree cap
  if (params_.dedupe_edges) {
    const auto pos = std::lower_bound(slot.sets.begin(), slot.sets.end(), edge.set);
    if (pos != slot.sets.end() && *pos == edge.set) return;  // duplicate edge
    slot.sets.insert(pos, edge.set);
  } else {
    slot.sets.push_back(edge.set);
  }
  ++stored_edges_;

  while (stored_edges_ > edge_budget_ && live_elements_ > 1) {
    evict_max();
  }
  note_space();
}

void SubsampleSketch::evict_max() {
  COVSTREAM_CHECK(!by_hash_.empty());
  const auto [hash, slot_index] = by_hash_.top();
  by_hash_.pop();
  Slot& slot = slots_[slot_index];
  COVSTREAM_CHECK(slot.alive && slot.hash == hash);
  cutoff_hash_ = std::min(cutoff_hash_, hash);
  stored_edges_ -= slot.sets.size();
  slot_of_.erase(slot.elem);
  slot.alive = false;
  slot.sets.clear();
  slot.sets.shrink_to_fit();
  free_slots_.push_back(slot_index);
  --live_elements_;
}

void SubsampleSketch::note_space() {
  const std::size_t words = space_words();
  if (words > peak_space_words_) peak_space_words_ = words;
}

void SubsampleSketch::consume(EdgeStream& stream) {
  run_pass(stream, [this](const Edge& edge) { update(edge); });
}

SubsampleSketch SubsampleSketch::build_offline(const CoverageInstance& instance,
                                               SketchParams params) {
  // Algorithm 1: visit elements in increasing hash order, adding each with at
  // most degree_cap of its edges, stopping at the budget (maximal prefix).
  SubsampleSketch sketch(params);
  const Mix64Hash hash(params.hash_seed);
  std::vector<std::pair<std::uint64_t, ElemId>> order;
  order.reserve(instance.num_elems());
  for (ElemId e = 0; e < instance.num_elems(); ++e) {
    if (instance.elem_degree(e) > 0) order.emplace_back(hash(e), e);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [h, elem] : order) {
    const auto sets = instance.sets_of(elem);
    const std::size_t take = std::min(sets.size(), sketch.degree_cap_);
    if (sketch.stored_edges_ + take > sketch.edge_budget_ &&
        sketch.live_elements_ >= 1) {
      sketch.cutoff_hash_ = h;
      break;
    }
    const std::uint32_t slot_index = static_cast<std::uint32_t>(sketch.slots_.size());
    Slot slot;
    slot.elem = elem;
    slot.hash = h;
    slot.alive = true;
    slot.sets.assign(sets.begin(), sets.begin() + take);
    std::sort(slot.sets.begin(), slot.sets.end());
    sketch.slots_.push_back(std::move(slot));
    sketch.slot_of_.emplace(elem, slot_index);
    sketch.by_hash_.emplace(h, slot_index);
    sketch.stored_edges_ += take;
    ++sketch.live_elements_;
  }
  sketch.note_space();
  return sketch;
}

double SubsampleSketch::p_star() const {
  if (!saturated()) return 1.0;
  // Largest retained hash (heap top is live by construction).
  if (by_hash_.empty()) return hash_to_unit(cutoff_hash_);
  return hash_to_unit(by_hash_.top().first);
}

std::span<const SetId> SubsampleSketch::sets_of(ElemId elem) const {
  const auto it = slot_of_.find(elem);
  if (it == slot_of_.end()) return {};
  return slots_[it->second].sets;
}

bool SubsampleSketch::is_retained(ElemId elem) const {
  return slot_of_.count(elem) > 0;
}

void SubsampleSketch::merge_from(const SubsampleSketch& other) {
  COVSTREAM_CHECK(params_.hash_seed == other.params_.hash_seed);
  COVSTREAM_CHECK(params_.num_sets == other.params_.num_sets);
  COVSTREAM_CHECK(degree_cap_ == other.degree_cap_);
  COVSTREAM_CHECK(edge_budget_ == other.edge_budget_);
  COVSTREAM_CHECK(params_.dedupe_edges && other.params_.dedupe_edges);

  // An element evicted by either shard cannot belong to the combined prefix:
  // the prefix below its hash already overflowed the budget using one
  // shard's edges alone.
  cutoff_hash_ = std::min(cutoff_hash_, other.cutoff_hash_);
  purge([this](ElemId elem) {
    auto it = slot_of_.find(elem);
    return slots_[it->second].hash >= cutoff_hash_;
  });

  for (const Slot& incoming : other.slots_) {
    if (!incoming.alive || incoming.hash >= cutoff_hash_) continue;
    auto it = slot_of_.find(incoming.elem);
    if (it == slot_of_.end()) {
      std::uint32_t slot_index;
      if (free_slots_.empty()) {
        slot_index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
      } else {
        slot_index = free_slots_.back();
        free_slots_.pop_back();
      }
      Slot& slot = slots_[slot_index];
      slot.elem = incoming.elem;
      slot.hash = incoming.hash;
      slot.alive = true;
      slot.sets = incoming.sets;
      slot_of_.emplace(incoming.elem, slot_index);
      by_hash_.emplace(incoming.hash, slot_index);
      stored_edges_ += slot.sets.size();
      ++live_elements_;
    } else {
      Slot& slot = slots_[it->second];
      stored_edges_ -= slot.sets.size();
      std::vector<SetId> merged;
      merged.reserve(slot.sets.size() + incoming.sets.size());
      std::set_union(slot.sets.begin(), slot.sets.end(), incoming.sets.begin(),
                     incoming.sets.end(), std::back_inserter(merged));
      if (merged.size() > degree_cap_) merged.resize(degree_cap_);
      slot.sets = std::move(merged);
      stored_edges_ += slot.sets.size();
    }
  }
  while (stored_edges_ > edge_budget_ && live_elements_ > 1) {
    evict_max();
  }
  note_space();
}

void SubsampleSketch::purge(const std::function<bool(ElemId)>& pred) {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.alive || !pred(slot.elem)) continue;
    stored_edges_ -= slot.sets.size();
    slot_of_.erase(slot.elem);
    slot.alive = false;
    slot.sets.clear();
    slot.sets.shrink_to_fit();
    free_slots_.push_back(i);
    --live_elements_;
  }
  // Rebuild the hash heap over survivors (priority_queue has no erase).
  by_hash_ = {};
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) by_hash_.emplace(slots_[i].hash, i);
  }
}

SketchView SubsampleSketch::view() const {
  SketchView view;
  view.num_sets = params_.num_sets;
  view.p_star = p_star();
  view.set_offsets.assign(params_.num_sets + 1, 0);

  // Compact live slots into [0, num_retained).
  std::vector<std::uint32_t> compact(slots_.size(), 0);
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) compact[i] = next++;
  }
  view.num_retained = next;

  for (const Slot& slot : slots_) {
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) ++view.set_offsets[set + 1];
  }
  for (SetId s = 0; s < params_.num_sets; ++s) {
    view.set_offsets[s + 1] += view.set_offsets[s];
  }
  view.set_slots.resize(stored_edges_);
  std::vector<std::size_t> cursor(view.set_offsets.begin(), view.set_offsets.end() - 1);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) {
      view.set_slots[cursor[set]++] = compact[i];
    }
  }
  return view;
}

double SubsampleSketch::estimate_coverage(std::span<const SetId> family) const {
  // Count retained elements covered by the family without building the view.
  std::vector<bool> in_family(params_.num_sets, false);
  for (const SetId set : family) in_family[set] = true;
  std::size_t covered = 0;
  for (const Slot& slot : slots_) {
    if (!slot.alive) continue;
    for (const SetId set : slot.sets) {
      if (in_family[set]) {
        ++covered;
        break;
      }
    }
  }
  const double p = p_star();
  COVSTREAM_CHECK(p > 0.0);
  return static_cast<double>(covered) / p;
}

std::size_t SubsampleSketch::space_words() const {
  // Per retained element: id (1) + hash (1) + heap entry (1) + map entry (~2)
  // + vector header (~2). Per stored edge: one 4-byte SetId, 2 per word.
  return 8 + live_elements_ * 7 + (stored_edges_ + 1) / 2;
}

}  // namespace covstream
