#include "core/subsample_sketch.hpp"

#include <algorithm>

#include "stream/stream_engine.hpp"

namespace covstream {

std::size_t SketchView::neighborhood_size(std::span<const SetId> family) const {
  BitVec touched(num_retained);
  std::size_t count = 0;
  for (const SetId set : family) {
    for (const std::uint32_t slot : slots_of(set)) {
      if (touched.set_if_clear(slot)) ++count;
    }
  }
  return count;
}

double SketchView::estimate_coverage(std::span<const SetId> family) const {
  COVSTREAM_CHECK(p_star > 0.0);
  return static_cast<double>(neighborhood_size(family)) / p_star;
}

SubsampleSketch::SubsampleSketch(SketchParams params)
    : params_((params.validate(), params)),
      hash_(params_.hash_seed),
      degree_cap_(params_.degree_cap()),
      edge_budget_(params_.edge_budget()),
      core_(degree_cap_, edge_budget_, ~0ULL) {}

void SubsampleSketch::update(const Edge& edge) {
  COVSTREAM_CHECK(edge.set < params_.num_sets);
  bool created = false;
  const std::uint32_t slot = core_.admit(edge.elem, hash_(edge.elem), created);
  if (slot == MinHashCore<std::uint64_t>::kNoSlot) return;  // evicted earlier
  if (core_.add_edge(slot, edge.set, params_.dedupe_edges)) {
    core_.enforce_budget();
  }
  note_space();
}

void SubsampleSketch::note_space() {
  const std::size_t words = space_words();
  if (words > peak_space_words_) peak_space_words_ = words;
}

void SubsampleSketch::consume(EdgeStream& stream, std::size_t batch_edges) {
  const StreamEngine engine({batch_edges, nullptr});
  engine.run(stream, {}, [this](std::span<const Edge> chunk) {
    for (const Edge& edge : chunk) update(edge);
  });
}

SubsampleSketch SubsampleSketch::build_offline(const CoverageInstance& instance,
                                               SketchParams params) {
  // Algorithm 1: visit elements in increasing hash order, adding each with at
  // most degree_cap of its edges, stopping at the budget (maximal prefix).
  SubsampleSketch sketch(params);
  const Mix64Hash hash(params.hash_seed);
  std::vector<std::pair<std::uint64_t, ElemId>> order;
  order.reserve(instance.num_elems());
  for (ElemId e = 0; e < instance.num_elems(); ++e) {
    if (instance.elem_degree(e) > 0) order.emplace_back(hash(e), e);
  }
  std::sort(order.begin(), order.end());
  std::vector<SetId> capped;
  for (const auto& [h, elem] : order) {
    const auto sets = instance.sets_of(elem);
    const std::size_t take = std::min(sets.size(), sketch.degree_cap_);
    if (sketch.core_.stored_edges() + take > sketch.edge_budget_ &&
        sketch.core_.live_elements() >= 1) {
      sketch.core_.set_cutoff(h);
      break;
    }
    capped.assign(sets.begin(), sets.begin() + take);
    std::sort(capped.begin(), capped.end());
    const std::uint32_t slot = sketch.core_.create_slot(elem, h);
    sketch.core_.assign_edges(slot, capped);
  }
  sketch.note_space();
  return sketch;
}

double SubsampleSketch::p_star() const {
  if (!saturated()) return 1.0;
  // Largest retained hash; an emptied (fully evicted) sketch reports the
  // cutoff itself.
  if (core_.live_elements() == 0) return hash_to_unit(core_.cutoff());
  return hash_to_unit(core_.max_live_key());
}

std::span<const SetId> SubsampleSketch::sets_of(ElemId elem) const {
  const std::uint32_t slot = core_.find(elem);
  if (slot == MinHashCore<std::uint64_t>::kNoSlot) return {};
  return core_.edges_of(slot);
}

bool SubsampleSketch::is_retained(ElemId elem) const {
  return core_.find(elem) != MinHashCore<std::uint64_t>::kNoSlot;
}

void SubsampleSketch::merge_from(const SubsampleSketch& other) {
  COVSTREAM_CHECK(params_.hash_seed == other.params_.hash_seed);
  COVSTREAM_CHECK(params_.num_sets == other.params_.num_sets);
  COVSTREAM_CHECK(degree_cap_ == other.degree_cap_);
  COVSTREAM_CHECK(edge_budget_ == other.edge_budget_);
  COVSTREAM_CHECK(params_.dedupe_edges && other.params_.dedupe_edges);

  core_.merge_from(other.core_);
  core_.enforce_budget();
  note_space();
}

void SubsampleSketch::purge(const std::function<bool(ElemId)>& pred) {
  core_.purge(pred);
}

SketchView SubsampleSketch::view() const {
  SketchView view;
  view.num_sets = params_.num_sets;
  view.p_star = p_star();
  view.num_retained = core_.build_csr(params_.num_sets, view.set_offsets,
                                      view.set_slots, [](std::uint32_t) {});
  return view;
}

double SubsampleSketch::estimate_coverage(std::span<const SetId> family) const {
  // Count retained elements covered by the family without building the view.
  std::vector<bool> in_family(params_.num_sets, false);
  for (const SetId set : family) in_family[set] = true;
  std::size_t covered = 0;
  for (std::uint32_t slot = 0; slot < core_.slot_count(); ++slot) {
    if (!core_.alive(slot)) continue;
    for (const SetId set : core_.edges_of(slot)) {
      if (in_family[set]) {
        ++covered;
        break;
      }
    }
  }
  const double p = p_star();
  COVSTREAM_CHECK(p > 0.0);
  return static_cast<double>(covered) / p;
}

}  // namespace covstream
