#include "core/streaming_kcover.hpp"

#include <algorithm>
#include <cmath>

#include "core/distributed.hpp"

namespace covstream {

SketchParams StreamingOptions::sketch_params(SetId num_sets, std::uint32_t k,
                                             double eps_override,
                                             double delta_override) const {
  SketchParams params;
  params.num_sets = num_sets;
  params.k = std::max<std::uint32_t>(1, std::min<std::uint32_t>(k, num_sets));
  params.eps = eps_override > 0.0 ? eps_override : eps;
  if (delta_override > 0.0) {
    params.delta_pp = delta_override;
  } else if (delta_pp > 0.0) {
    params.delta_pp = delta_pp;
  } else {
    // Algorithm 3's choice: delta'' = 2 + log n.
    params.delta_pp = 2.0 + std::log(std::max<double>(2.0, num_sets));
  }
  params.elems_hint = elems_hint;
  params.budget_mode = budget_mode;
  params.practical_c = practical_c;
  params.explicit_budget = explicit_budget;
  params.enforce_degree_cap = enforce_degree_cap;
  params.hash_seed = seed;
  return params;
}

KCoverResult kcover_with_solver(const SubsampleSketch& sketch,
                                const SketchView& view, Solver& solver,
                                std::uint32_t k) {
  const GreedyResult greedy = solver.max_cover(k);
  KCoverResult result;
  result.solver_space_words = solver.space_words();
  result.solution = greedy.solution;
  result.estimated_coverage =
      view.p_star > 0.0 ? static_cast<double>(greedy.covered) / view.p_star : 0.0;
  result.sketch_retained = sketch.retained_elements();
  result.sketch_edges = sketch.stored_edges();
  result.p_star = view.p_star;
  result.space_words = sketch.peak_space_words();
  result.final_space_words = sketch.space_words();
  return result;
}

KCoverResult kcover_on_sketch(const SubsampleSketch& sketch, std::uint32_t k,
                              ThreadPool* pool) {
  const SketchView view = sketch.view();
  Solver solver(view, pool);
  return kcover_with_solver(sketch, view, solver, k);
}

KCoverResult streaming_kcover(EdgeStream& stream, SetId num_sets, std::uint32_t k,
                              const StreamingOptions& options, ThreadPool* pool) {
  // Algorithm 3: eps' = eps / 12 drives the sketch; greedy runs on the view.
  SketchParams params = options.sketch_params(num_sets, k, options.eps / 12.0);
  if (pool != nullptr && pool->thread_count() > 1) {
    // Pool path: one shard per thread fed by the engine's partitioned deal,
    // reduced by merging. Merge == single-stream sketch (DESIGN.md §5.5), so
    // everything downstream of the sketch is unchanged.
    ShardedSketchBuilder builder(params, pool->thread_count(), pool);
    builder.consume(stream, ShardRouting::kRoundRobin, options.batch_edges);
    const std::size_t shard_peak = builder.max_shard_space_words();
    const SubsampleSketch sketch = builder.finalize();
    KCoverResult result = kcover_on_sketch(sketch, k, pool);
    result.space_words = std::max(result.space_words,
                                  shard_peak * pool->thread_count());
    result.passes = stream.passes_started();
    return result;
  }
  SubsampleSketch sketch(params);
  sketch.consume(stream, options.batch_edges);
  KCoverResult result = kcover_on_sketch(sketch, k);
  result.passes = stream.passes_started();
  return result;
}

}  // namespace covstream
