#include "core/sketch_ladder.hpp"

#include "parallel/parallel_for.hpp"

namespace covstream {
namespace {
constexpr std::size_t kChunkEdges = 1 << 15;
}

SketchLadder::SketchLadder(std::vector<SketchParams> rung_params, ThreadPool* pool)
    : pool_(pool) {
  rungs_.reserve(rung_params.size());
  for (SketchParams& params : rung_params) {
    rungs_.emplace_back(params);
  }
}

void SketchLadder::update(const Edge& edge) {
  for (SubsampleSketch& rung : rungs_) rung.update(edge);
}

void SketchLadder::update_chunk(const std::vector<Edge>& edges) {
  parallel_for_blocked(
      pool_, rungs_.size(),
      [this, &edges](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          for (const Edge& edge : edges) rungs_[r].update(edge);
        }
      },
      /*grain=*/1);
}

void SketchLadder::consume(EdgeStream& stream,
                           const std::function<bool(const Edge&)>& filter) {
  std::vector<Edge> chunk;
  chunk.reserve(kChunkEdges);
  stream.reset();
  Edge edge;
  while (stream.next(edge)) {
    if (filter && !filter(edge)) continue;
    chunk.push_back(edge);
    if (chunk.size() >= kChunkEdges) {
      update_chunk(chunk);
      chunk.clear();
    }
  }
  if (!chunk.empty()) update_chunk(chunk);
}

std::size_t SketchLadder::peak_space_words() const {
  std::size_t total = 0;
  for (const SubsampleSketch& rung : rungs_) total += rung.peak_space_words();
  return total;
}

}  // namespace covstream
