#include "core/sketch_ladder.hpp"

#include <algorithm>

#include "hash/simd/kernels.hpp"
#include "parallel/parallel_for.hpp"

namespace covstream {

SketchLadder::SketchLadder(std::vector<SketchParams> rung_params, ThreadPool* pool)
    : pool_(pool) {
  rungs_.reserve(rung_params.size());
  for (SketchParams& params : rung_params) {
    rungs_.emplace_back(params);
  }
  recompute_shared_keys();
}

void SketchLadder::recompute_shared_keys() {
  // Keys can be shared iff every rung hashes elements identically AND agrees
  // on the set universe (the chunk-level bounds check runs once, against the
  // shared num_sets).
  shared_keys_ =
      !rungs_.empty() &&
      std::all_of(rungs_.begin(), rungs_.end(), [&](const SubsampleSketch& r) {
        return r.params().hash_seed == rungs_.front().params().hash_seed &&
               r.params().num_sets == rungs_.front().params().num_sets;
      });
}

void SketchLadder::update(const Edge& edge) {
  for (SubsampleSketch& rung : rungs_) rung.update(edge);
}

void SketchLadder::update_chunk(std::span<const Edge> edges) {
  if (edges.empty() || rungs_.empty()) return;
  if (shared_keys_) {
    // One hash sweep for the whole ladder; rungs admit off the shared spans
    // (they differ only in cap/budget/cutoff, DESIGN.md §5.8). Serially the
    // sweep runs in L1-sized blocks so every rung re-reads hot keys; with a
    // pool the chunk stays whole (one task per rung per chunk — block-level
    // barriers would dominate), each task streaming the spans on its own
    // core. Block size never changes results (chunk-size independence).
    const Mix64Hash hash(rungs_.front().params().hash_seed);
    const SetId num_sets = rungs_.front().params().num_sets;
    constexpr std::size_t kSharedSweepBlock = 4096;
    const std::size_t block =
        pool_ == nullptr ? kSharedSweepBlock : edges.size();
    elem_scratch_.resize(std::min(edges.size(), block));
    key_scratch_.resize(std::min(edges.size(), block));
    for (std::size_t at = 0; at < edges.size(); at += block) {
      const std::size_t len = std::min(block, edges.size() - at);
      const std::span<const Edge> part = edges.subspan(at, len);
      // One fused kernel sweep per block (DESIGN.md §5.11): elem extraction
      // off the Edge stride, the shared bounds check, and 4-lane mix64
      // under AVX2 — instead of a per-edge extract loop plus a hash call.
      if (!simd::kernels().hash_edges_u64(part.data(), elem_scratch_.data(),
                                          key_scratch_.data(), len,
                                          hash.salt(), num_sets)) {
        for (const Edge& edge : part) {
          COVSTREAM_CHECK(edge.set < num_sets);
        }
      }
      const std::span<const ElemId> elems(elem_scratch_.data(), len);
      const std::span<const std::uint64_t> keys(key_scratch_.data(), len);
      // Once EVERY rung is saturated, pre-filter the block ONCE against the
      // max cutoff across rungs: a key at or above it is at or above every
      // rung's cutoff, so the (typical) all-rejected block costs one sweep
      // instead of H. Candidates are re-checked against each rung's live
      // cutoff inside admit_selected, so the shared over-approximation is
      // exact. Cutoffs only fall, so re-reading them per block is safe.
      std::uint64_t max_cutoff = 0;
      for (const SubsampleSketch& rung : rungs_) {
        max_cutoff = std::max(max_cutoff, rung.admission_cutoff());
      }
      if (max_cutoff != ~0ULL) {
        // The dispatched compare+compact kernel filters the block in one
        // sweep; the scratch is sized to the block because the AVX2 tier
        // stores 4-wide (entries past `kept` are scratch, never past len).
        if (candidate_scratch_.size() < len) candidate_scratch_.resize(len);
        const std::size_t kept = simd::kernels().compact_below_u64(
            key_scratch_.data(), len, max_cutoff, candidate_scratch_.data());
        // Fully rejected block — the dominant case once saturated. Nothing
        // can mutate any rung (and every saturated rung's peak was already
        // recorded at its evictions), so skip the per-rung fan-out.
        if (kept == 0) continue;
        const std::span<const std::uint32_t> candidates(
            candidate_scratch_.data(), kept);
        parallel_for_blocked(
            pool_, rungs_.size(),
            [this, part, elems, keys, candidates](std::size_t begin,
                                                  std::size_t end) {
              for (std::size_t r = begin; r < end; ++r) {
                rungs_[r].update_candidates_with_keys(part, elems, keys,
                                                      candidates);
              }
            },
            /*grain=*/1);
        continue;
      }
      parallel_for_blocked(
          pool_, rungs_.size(),
          [this, part, elems, keys](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
              rungs_[r].update_chunk_with_keys(part, elems, keys);
            }
          },
          /*grain=*/1);
    }
    return;
  }
  parallel_for_blocked(
      pool_, rungs_.size(),
      [this, edges](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) rungs_[r].update_chunk(edges);
      },
      /*grain=*/1);
}

void SketchLadder::consume(EdgeStream& stream, const EdgeFilter& filter,
                           std::size_t batch_edges) {
  // update_chunk already fans rungs out over the pool (one task per rung per
  // chunk, barrier between chunks — the same shape run_replicated gave), so
  // one engine chunk feed suffices and the per-chunk hash sweep runs once.
  const StreamEngine engine({batch_edges, nullptr});
  engine.run(stream, filter,
             [this](std::span<const Edge> chunk) { update_chunk(chunk); });
}

void SketchLadder::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('L', 'D', 'D', 'R'));
  writer.u64(rungs_.size());
  for (const SubsampleSketch& rung : rungs_) rung.save(writer);
  writer.end_section();
}

std::optional<SketchLadder> SketchLadder::load_snapshot(SnapshotReader& reader,
                                                        ThreadPool* pool) {
  if (!reader.begin_section(snapshot_tag('L', 'D', 'D', 'R'))) return std::nullopt;
  const std::uint64_t count = reader.u64();
  if (!reader.ok()) return std::nullopt;
  // Bound the count against the payload BEFORE reserving: every rung's
  // SKCH section occupies at least its section header (12 bytes) on the
  // wire, so a forged count implying more rungs than the payload can hold
  // must fail the reader, not reserve hundreds of megabytes of rungs_.
  if (count > reader.remaining() / 12) {
    reader.fail("sketch ladder: rung count overruns the section payload");
    return std::nullopt;
  }
  SketchLadder ladder;
  ladder.pool_ = pool;
  ladder.rungs_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t r = 0; r < count; ++r) {
    std::optional<SubsampleSketch> rung = SubsampleSketch::load_snapshot(reader);
    if (!rung) return std::nullopt;
    ladder.rungs_.push_back(std::move(*rung));
  }
  if (!reader.end_section()) return std::nullopt;
  ladder.recompute_shared_keys();
  return ladder;
}

std::size_t SketchLadder::peak_space_words() const {
  std::size_t total = 0;
  for (const SubsampleSketch& rung : rungs_) total += rung.peak_space_words();
  return total;
}

void SketchLadder::merge_from(const SketchLadder& other) {
  COVSTREAM_CHECK(rungs_.size() == other.rungs_.size());
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    rungs_[i].merge_from(other.rungs_[i]);
  }
}

}  // namespace covstream
