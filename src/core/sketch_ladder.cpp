#include "core/sketch_ladder.hpp"

#include "parallel/parallel_for.hpp"

namespace covstream {

SketchLadder::SketchLadder(std::vector<SketchParams> rung_params, ThreadPool* pool)
    : pool_(pool) {
  rungs_.reserve(rung_params.size());
  for (SketchParams& params : rung_params) {
    rungs_.emplace_back(params);
  }
}

void SketchLadder::update(const Edge& edge) {
  for (SubsampleSketch& rung : rungs_) rung.update(edge);
}

void SketchLadder::update_chunk(const std::vector<Edge>& edges) {
  parallel_for_blocked(
      pool_, rungs_.size(),
      [this, &edges](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          for (const Edge& edge : edges) rungs_[r].update(edge);
        }
      },
      /*grain=*/1);
}

void SketchLadder::consume(EdgeStream& stream, const EdgeFilter& filter,
                           std::size_t batch_edges) {
  const StreamEngine engine({batch_edges, pool_});
  engine.run_replicated(stream, filter, rungs_.size(),
                        [this](std::size_t r, std::span<const Edge> chunk) {
                          for (const Edge& edge : chunk) rungs_[r].update(edge);
                        });
}

std::size_t SketchLadder::peak_space_words() const {
  std::size_t total = 0;
  for (const SubsampleSketch& rung : rungs_) total += rung.peak_space_words();
  return total;
}

}  // namespace covstream
