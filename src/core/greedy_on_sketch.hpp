// Lazy greedy over a SketchView. This is "the greedy algorithm" every
// streaming algorithm in Section 3 runs on the sketch: the classic
// Nemhauser–Wolsey–Fisher 1-1/e greedy, implemented with lazy marginal-gain
// evaluation (valid by submodularity of coverage), so large sketches solve in
// near-linear time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/subsample_sketch.hpp"
#include "util/common.hpp"

namespace covstream {

struct GreedyResult {
  std::vector<SetId> solution;             // in pick order
  std::vector<std::size_t> marginal_gains; // retained elements gained per pick
  std::size_t covered = 0;                 // retained elements covered at end

  double cover_fraction(std::size_t num_retained) const {
    return num_retained == 0
               ? 1.0
               : static_cast<double>(covered) / static_cast<double>(num_retained);
  }
};

/// Picks up to k sets maximizing coverage of retained elements. Stops early
/// when no set has positive marginal gain.
GreedyResult greedy_max_cover(const SketchView& view, std::uint32_t k);

/// Picks up to `max_sets` sets, stopping as soon as `target_covered` retained
/// elements are covered (used by Algorithm 4 and the multipass final stage).
GreedyResult greedy_cover_target(const SketchView& view, std::size_t max_sets,
                                 std::size_t target_covered);

}  // namespace covstream
