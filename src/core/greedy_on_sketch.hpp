// Greedy over a SketchView — thin wrappers over the shared solver engine
// (src/solve/, DESIGN.md §5.10). This is "the greedy algorithm" every
// streaming algorithm in Section 3 runs on the sketch: the classic
// Nemhauser–Wolsey–Fisher 1-1/e greedy. GreedyResult and the strategy
// machinery live in solve/greedy_engine.hpp; callers that solve repeatedly
// (or want strategy/pool control) should hold a Solver instead of calling
// these one-shot helpers.
#pragma once

#include <cstdint>

#include "core/subsample_sketch.hpp"
#include "solve/solver.hpp"
#include "util/common.hpp"

namespace covstream {

/// Picks up to k sets maximizing coverage of retained elements. Stops early
/// when no set has positive marginal gain.
GreedyResult greedy_max_cover(const SketchView& view, std::uint32_t k);

/// Picks up to `max_sets` sets, stopping as soon as `target_covered` retained
/// elements are covered (used by Algorithm 4 and the multipass final stage).
GreedyResult greedy_cover_target(const SketchView& view, std::size_t max_sets,
                                 std::size_t target_covered);

}  // namespace covstream
