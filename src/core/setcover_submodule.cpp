#include "core/setcover_submodule.hpp"

#include <algorithm>
#include <cmath>

namespace covstream {

SubmoduleParams SubmoduleParams::derive(std::uint32_t k_prime, double eps_prime,
                                        double lambda_prime) {
  COVSTREAM_CHECK(k_prime >= 1);
  COVSTREAM_CHECK(lambda_prime > 0.0 && lambda_prime <= 1.0 / std::exp(1.0));
  COVSTREAM_CHECK(eps_prime > 0.0 && eps_prime <= 1.0);
  SubmoduleParams sub;
  sub.k_prime = k_prime;
  sub.lambda_prime = lambda_prime;
  const double log_inv_lambda = std::log(1.0 / lambda_prime);
  // Algorithm 4 line 1: eps = eps' / (13 log(1/lambda')).
  sub.eps_inner = std::min(1.0, eps_prime / (13.0 * log_inv_lambda));
  sub.budget_sets = static_cast<std::uint32_t>(
      std::max<double>(1.0, std::ceil(static_cast<double>(k_prime) * log_inv_lambda)));
  return sub;
}

double SubmoduleParams::acceptance_fraction() const {
  const double log_inv_lambda = std::log(1.0 / lambda_prime);
  // Algorithm 4 line 4: accept if >= 1 - lambda' - eps*log(1/lambda') covered.
  return std::max(0.0, 1.0 - lambda_prime - eps_inner * log_inv_lambda);
}

SketchParams submodule_sketch_params(SetId num_sets, const SubmoduleParams& sub,
                                     const StreamingOptions& options,
                                     double delta_pp) {
  return options.sketch_params(num_sets, sub.budget_sets, sub.eps_inner, delta_pp);
}

SubmoduleResult setcover_submodule_evaluate(const SubsampleSketch& sketch,
                                            const SubmoduleParams& sub,
                                            ThreadPool* pool) {
  const SketchView view = sketch.view();
  SubmoduleResult result;
  if (view.num_retained == 0) {
    // Empty sketch: nothing (left) to cover; the empty family is feasible
    // (the cover_fraction(0) == 1.0 convention — solve/greedy_engine.hpp).
    result.feasible = true;
    result.sketch_cover_fraction = 1.0;
    return result;
  }
  const std::size_t target = static_cast<std::size_t>(
      std::ceil(sub.acceptance_fraction() * static_cast<double>(view.num_retained)));
  Solver solver(view, pool);
  const GreedyResult greedy =
      solver.cover_target(sub.budget_sets, std::max<std::size_t>(1, target));
  result.sketch_cover_fraction =
      static_cast<double>(greedy.covered) / static_cast<double>(view.num_retained);
  result.feasible = greedy.covered >= target;
  if (result.feasible) result.solution = greedy.solution;
  return result;
}

}  // namespace covstream
