#include "core/greedy_on_sketch.hpp"

#include <queue>

#include "util/bitvec.hpp"

namespace covstream {
namespace {

GreedyResult greedy_impl(const SketchView& view, std::size_t max_sets,
                         std::size_t target_covered) {
  GreedyResult result;
  if (max_sets == 0 || view.num_sets == 0) return result;

  BitVec covered(view.num_retained);
  // Max-heap of (cached gain, set). Cached gains only overestimate (coverage
  // is submodular), so popping, recomputing, and reinserting is sound.
  std::priority_queue<std::pair<std::size_t, SetId>> heap;
  for (SetId s = 0; s < view.num_sets; ++s) {
    const std::size_t degree = view.slots_of(s).size();
    if (degree > 0) heap.emplace(degree, s);
  }

  auto current_gain = [&](SetId s) {
    std::size_t gain = 0;
    for (const std::uint32_t slot : view.slots_of(s)) {
      if (!covered.test(slot)) ++gain;
    }
    return gain;
  };

  while (result.solution.size() < max_sets && result.covered < target_covered &&
         !heap.empty()) {
    const auto [cached, set] = heap.top();
    heap.pop();
    const std::size_t gain = current_gain(set);
    if (gain == 0) continue;  // fully covered; stale entries below are too
    if (!heap.empty() && gain < heap.top().first) {
      heap.emplace(gain, set);  // stale; requeue with the fresh gain
      continue;
    }
    // `set` is (one of) the best; take it.
    for (const std::uint32_t slot : view.slots_of(set)) {
      if (covered.set_if_clear(slot)) ++result.covered;
    }
    result.solution.push_back(set);
    result.marginal_gains.push_back(gain);
  }
  return result;
}

}  // namespace

GreedyResult greedy_max_cover(const SketchView& view, std::uint32_t k) {
  return greedy_impl(view, k, view.num_retained == 0 ? 1 : view.num_retained);
}

GreedyResult greedy_cover_target(const SketchView& view, std::size_t max_sets,
                                 std::size_t target_covered) {
  return greedy_impl(view, max_sets, target_covered);
}

}  // namespace covstream
