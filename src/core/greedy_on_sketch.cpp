#include "core/greedy_on_sketch.hpp"

namespace covstream {

GreedyResult greedy_max_cover(const SketchView& view, std::uint32_t k) {
  Solver solver(view);
  return solver.max_cover(k);
}

GreedyResult greedy_cover_target(const SketchView& view, std::size_t max_sets,
                                 std::size_t target_covered) {
  Solver solver(view);
  return solver.cover_target(max_sets, target_covered);
}

}  // namespace covstream
