// A ladder of H<=n sketches built in a single streaming pass.
//
// Algorithm 5 guesses the set-cover size k' over a geometric grid and "runs
// these in parallel": every guess needs its own sketch (the degree cap
// depends on k). SketchLadder feeds one pass of edges to all rungs —
// serially, or chunk-parallel across rungs with a ThreadPool (rungs are
// independent, so parallel == serial bit-for-bit, DESIGN.md §5.5/§5.7).
//
// When every rung shares the same hash seed (and the same universe of sets
// — the Algorithm 5 grid always does; rungs differ only in degree cap,
// budget, and realized cutoff), the ladder hashes each chunk's elements
// ONCE into shared scratch spans and every rung admits off the same keys:
// a ladder pass costs one hash sweep instead of H (DESIGN.md §5.8). Mixed
// seeds fall back to per-rung hashing, bit-for-bit identical either way.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/subsample_sketch.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/stream_engine.hpp"

namespace covstream {

class SketchLadder {
 public:
  explicit SketchLadder(std::vector<SketchParams> rung_params,
                        ThreadPool* pool = nullptr);

  std::size_t size() const { return rungs_.size(); }
  SubsampleSketch& rung(std::size_t i) { return rungs_[i]; }
  const SubsampleSketch& rung(std::size_t i) const { return rungs_[i]; }

  /// True when all rungs share one hash seed (and set universe), so chunk
  /// keys are computed once and shared across rungs.
  bool shares_keys() const { return shared_keys_; }

  /// Feeds one edge to every rung (serial path).
  void update(const Edge& edge);

  /// Feeds a buffered chunk of edges to every rung, one task per rung.
  /// Shared-seed ladders hash the chunk once; each rung then runs the
  /// substrate's batched admission over the shared (elem, key) spans.
  void update_chunk(std::span<const Edge> edges);

  /// Runs one full pass of the stream through all rungs (engine-batched
  /// chunks into update_chunk). `filter` may be empty; otherwise edges
  /// failing it are dropped once per chunk, before any rung sees them (used
  /// by Algorithm 6 to hide covered elements). `batch_edges` = 0 picks the
  /// engine default.
  void consume(EdgeStream& stream, const EdgeFilter& filter = {},
               std::size_t batch_edges = 0);

  /// Sum of rung peak spaces (they coexist during the pass).
  std::size_t peak_space_words() const;

  /// Rung-wise union merge: both ladders must have the same rung count with
  /// pairwise-identical params (each rung pair merges under the sketch's own
  /// checks). Shards of a partitioned stream reduce to the single-pass
  /// ladder exactly as individual sketches do.
  void merge_from(const SketchLadder& other);

  // ----------------------------------------------------------- persistence --
  /// Snapshot object tag (docs/FORMATS.md §2); save/load via the
  /// save_snapshot()/load_snapshot() helpers of substrate/snapshot.hpp.
  static constexpr SnapshotType kSnapshotType = SnapshotType::kSketchLadder;

  /// Serializes every rung in order (DESIGN.md §5.9); a loaded ladder
  /// recomputes shared-key eligibility from the rung params, so the one-hash
  /// sweep optimization survives the round trip.
  void save(SnapshotWriter& writer) const;

  /// Restores a save()d ladder; nullopt (reader error set) on any failure.
  /// The pool is runtime context, not state — pass the one this process
  /// wants rung fan-out on (nullptr = serial).
  static std::optional<SketchLadder> load_snapshot(SnapshotReader& reader,
                                                   ThreadPool* pool = nullptr);

 private:
  SketchLadder() = default;  // load_snapshot fills rungs_ in place

  /// True iff every rung hashes identically and shares the set universe.
  void recompute_shared_keys();

  std::vector<SubsampleSketch> rungs_;
  ThreadPool* pool_ = nullptr;
  bool shared_keys_ = false;
  // One hash sweep per chunk, shared read-only across all rung tasks; once
  // every rung is saturated, one pre-filter sweep (against the max rung
  // cutoff) compacts shared candidates too.
  std::vector<ElemId> elem_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::uint32_t> candidate_scratch_;
};

}  // namespace covstream
