// A ladder of H<=n sketches built in a single streaming pass.
//
// Algorithm 5 guesses the set-cover size k' over a geometric grid and "runs
// these in parallel": every guess needs its own sketch (the degree cap
// depends on k). SketchLadder feeds one pass of edges to all rungs through
// the batched stream engine's replicated mode — serially, or chunk-parallel
// across rungs with a ThreadPool (rungs are independent, so parallel ==
// serial bit-for-bit, DESIGN.md §5.5/§5.7).
#pragma once

#include <cstddef>
#include <vector>

#include "core/subsample_sketch.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/stream_engine.hpp"

namespace covstream {

class SketchLadder {
 public:
  explicit SketchLadder(std::vector<SketchParams> rung_params,
                        ThreadPool* pool = nullptr);

  std::size_t size() const { return rungs_.size(); }
  SubsampleSketch& rung(std::size_t i) { return rungs_[i]; }
  const SubsampleSketch& rung(std::size_t i) const { return rungs_[i]; }

  /// Feeds one edge to every rung (serial path).
  void update(const Edge& edge);

  /// Feeds a buffered chunk of edges to every rung, one task per rung.
  void update_chunk(const std::vector<Edge>& edges);

  /// Runs one full pass of the stream through all rungs via the engine's
  /// replicated fan-out. `filter` may be empty; otherwise edges failing it
  /// are dropped once per chunk, before any rung sees them (used by
  /// Algorithm 6 to hide covered elements). `batch_edges` = 0 picks the
  /// engine default.
  void consume(EdgeStream& stream, const EdgeFilter& filter = {},
               std::size_t batch_edges = 0);

  /// Sum of rung peak spaces (they coexist during the pass).
  std::size_t peak_space_words() const;

 private:
  std::vector<SubsampleSketch> rungs_;
  ThreadPool* pool_;
};

}  // namespace covstream
