// Algorithm 3 / Theorem 3.1: single-pass (1 - 1/e - eps)-approximate k-cover
// in the edge-arrival model using O~(n) space.
//
// Build H<=n(k, eps/12, 2 + log n) over the stream, then run greedy on the
// sketch. The returned solution is the greedy pick; `estimated_coverage` is
// the sketch's unbiased estimate of its true coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "core/greedy_on_sketch.hpp"
#include "core/params.hpp"
#include "core/subsample_sketch.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"

namespace covstream {

/// Knobs shared by the streaming algorithms. Defaults follow the paper where
/// the paper fixes a value (delta'' = 2 + log n via `auto_delta`), and use
/// the Practical budget mode otherwise (DESIGN.md §2.2).
struct StreamingOptions {
  double eps = 0.2;
  BudgetMode budget_mode = BudgetMode::kPractical;
  double practical_c = 4.0;
  std::size_t explicit_budget = 0;
  double delta_pp = 0.0;  // 0 = the paper's choice for the algorithm
  std::uint64_t seed = 0xc0ffee5eedULL;  // overridden by callers in practice
  bool enforce_degree_cap = true;
  std::uint64_t elems_hint = 1u << 20;
  /// Stream-engine chunk size for every pass (0 = engine default); a pure
  /// buffering knob, never observable in results.
  std::size_t batch_edges = 0;

  /// Assembles SketchParams for a sketch tuned to solution size `k`.
  SketchParams sketch_params(SetId num_sets, std::uint32_t k,
                             double eps_override = 0.0,
                             double delta_override = 0.0) const;
};

struct KCoverResult {
  std::vector<SetId> solution;
  double estimated_coverage = 0.0;  // |Gamma(sketch, sol)| / p*
  std::size_t sketch_retained = 0;
  std::size_t sketch_edges = 0;
  double p_star = 1.0;
  std::size_t space_words = 0;        // peak sketch space over the pass
  std::size_t final_space_words = 0;  // steady-state sketch size at end of pass
  std::size_t solver_space_words = 0; // solver index + scratch for the solve
  std::size_t passes = 0;
};

/// Runs Algorithm 3 over one pass of `stream`. `num_sets` is n (known up
/// front, as in the paper); `k` is the cover size. With a pool, the sketch is
/// built as one engine-dealt shard per pool thread and reduced by merging —
/// content-identical to the single-threaded sketch (same retained elements,
/// edges, and p*; DESIGN.md §5.5), so the solution and estimates are
/// identical. Space accounting differs by construction: `space_words`
/// reports the distributed peak (shards coexist during the pass).
KCoverResult streaming_kcover(EdgeStream& stream, SetId num_sets, std::uint32_t k,
                              const StreamingOptions& options,
                              ThreadPool* pool = nullptr);

/// The same algorithm when the sketch has already been built (lets callers
/// reuse one sketch for several k <= sketch k; used by tests, benches, and
/// the serve path). The solve runs through the shared solver engine
/// (DESIGN.md §5.10); `pool` (nullable) parallelizes large decrement sweeps
/// without changing the solution.
KCoverResult kcover_on_sketch(const SubsampleSketch& sketch, std::uint32_t k,
                              ThreadPool* pool = nullptr);

/// The solve + result assembly of kcover_on_sketch for callers that keep a
/// warm Solver over one view across queries (SketchServer caches one per
/// published handle). `view` must be `solver`'s view and `sketch` its owner.
KCoverResult kcover_with_solver(const SubsampleSketch& sketch,
                                const SketchView& view, Solver& solver,
                                std::uint32_t k);

}  // namespace covstream
