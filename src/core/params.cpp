#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace covstream {

std::string to_string(BudgetMode mode) {
  switch (mode) {
    case BudgetMode::kPaper:
      return "paper";
    case BudgetMode::kPractical:
      return "practical";
    case BudgetMode::kExplicit:
      return "explicit";
  }
  return "?";
}

bool SketchParams::is_valid() const {
  return num_sets > 0 && k >= 1 && eps > 0.0 && eps <= 1.0 &&
         delta_pp >= 1.0 &&
         (budget_mode != BudgetMode::kExplicit || explicit_budget > 0) &&
         (budget_mode != BudgetMode::kPractical || practical_c > 0.0);
}

void SketchParams::validate() const { COVSTREAM_CHECK(is_valid()); }

void SketchParams::save(SnapshotWriter& writer) const {
  writer.begin_section(snapshot_tag('P', 'R', 'M', 'S'));
  writer.u32(num_sets);
  writer.u32(k);
  writer.f64(eps);
  writer.f64(delta_pp);
  writer.u64(elems_hint);
  writer.u32(static_cast<std::uint32_t>(budget_mode));
  writer.f64(practical_c);
  writer.u64(explicit_budget);
  writer.u8(enforce_degree_cap ? 1 : 0);
  writer.u8(dedupe_edges ? 1 : 0);
  writer.u64(hash_seed);
  writer.end_section();
}

bool SketchParams::load(SnapshotReader& reader) {
  if (!reader.begin_section(snapshot_tag('P', 'R', 'M', 'S'))) return false;
  num_sets = reader.u32();
  k = reader.u32();
  eps = reader.f64();
  delta_pp = reader.f64();
  elems_hint = reader.u64();
  const std::uint32_t mode = reader.u32();
  practical_c = reader.f64();
  explicit_budget = reader.u64();
  enforce_degree_cap = reader.u8() != 0;
  dedupe_edges = reader.u8() != 0;
  hash_seed = reader.u64();
  if (!reader.ok()) return false;
  if (mode > static_cast<std::uint32_t>(BudgetMode::kExplicit)) {
    return reader.fail("sketch params: unknown budget mode");
  }
  budget_mode = static_cast<BudgetMode>(mode);
  // validate()'s checks, reported through the reader instead of aborting.
  if (!is_valid()) {
    return reader.fail("sketch params: values out of range");
  }
  return reader.end_section();
}

std::size_t SketchParams::degree_cap() const {
  if (!enforce_degree_cap) return std::numeric_limits<std::size_t>::max();
  const double log_inv_eps = std::log(1.0 / eps);
  const double cap =
      std::ceil(static_cast<double>(num_sets) * log_inv_eps / (eps * k));
  if (!(cap >= 1.0)) return 1;  // eps == 1 collapses the formula; keep >= 1
  if (cap >= 1e18) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(cap);
}

double SketchParams::paper_delta() const {
  // Number of geometric levels mu = log_{1/(1-eps)} m = ln m / ln(1/(1-eps)).
  const double m = std::max<double>(4.0, static_cast<double>(elems_hint));
  const double denom = std::log(1.0 / std::max(1e-12, 1.0 - eps));
  const double mu = std::max(2.0, std::log(m) / std::max(1e-12, denom));
  return delta_pp * std::max(1.0, std::log(mu));
}

std::size_t SketchParams::edge_budget() const {
  const double n = static_cast<double>(num_sets);
  double budget = 0.0;
  switch (budget_mode) {
    case BudgetMode::kPaper: {
      const double log_inv_eps = std::max(1e-9, std::log(1.0 / eps));
      const double log_n = std::max(1.0, std::log(n));
      budget = 24.0 * n * paper_delta() * log_inv_eps * log_n /
               ((1.0 - eps + 1e-12) * eps * eps * eps);
      break;
    }
    case BudgetMode::kPractical: {
      budget = practical_c * n * std::log2(n + 2.0) * std::log2(2.0 / eps);
      break;
    }
    case BudgetMode::kExplicit:
      // Explicit budgets are taken literally (space-sweep experiments need
      // budgets below n); the theory modes are floored at n.
      return explicit_budget;
  }
  budget = std::max(budget, n);
  if (budget >= 1e18) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(budget);
}

}  // namespace covstream
