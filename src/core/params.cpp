#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace covstream {

std::string to_string(BudgetMode mode) {
  switch (mode) {
    case BudgetMode::kPaper:
      return "paper";
    case BudgetMode::kPractical:
      return "practical";
    case BudgetMode::kExplicit:
      return "explicit";
  }
  return "?";
}

void SketchParams::validate() const {
  COVSTREAM_CHECK(num_sets > 0);
  COVSTREAM_CHECK(k >= 1);
  COVSTREAM_CHECK(eps > 0.0 && eps <= 1.0);
  COVSTREAM_CHECK(delta_pp >= 1.0);
  if (budget_mode == BudgetMode::kExplicit) COVSTREAM_CHECK(explicit_budget > 0);
  if (budget_mode == BudgetMode::kPractical) COVSTREAM_CHECK(practical_c > 0.0);
}

std::size_t SketchParams::degree_cap() const {
  if (!enforce_degree_cap) return std::numeric_limits<std::size_t>::max();
  const double log_inv_eps = std::log(1.0 / eps);
  const double cap =
      std::ceil(static_cast<double>(num_sets) * log_inv_eps / (eps * k));
  if (!(cap >= 1.0)) return 1;  // eps == 1 collapses the formula; keep >= 1
  if (cap >= 1e18) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(cap);
}

double SketchParams::paper_delta() const {
  // Number of geometric levels mu = log_{1/(1-eps)} m = ln m / ln(1/(1-eps)).
  const double m = std::max<double>(4.0, static_cast<double>(elems_hint));
  const double denom = std::log(1.0 / std::max(1e-12, 1.0 - eps));
  const double mu = std::max(2.0, std::log(m) / std::max(1e-12, denom));
  return delta_pp * std::max(1.0, std::log(mu));
}

std::size_t SketchParams::edge_budget() const {
  const double n = static_cast<double>(num_sets);
  double budget = 0.0;
  switch (budget_mode) {
    case BudgetMode::kPaper: {
      const double log_inv_eps = std::max(1e-9, std::log(1.0 / eps));
      const double log_n = std::max(1.0, std::log(n));
      budget = 24.0 * n * paper_delta() * log_inv_eps * log_n /
               ((1.0 - eps + 1e-12) * eps * eps * eps);
      break;
    }
    case BudgetMode::kPractical: {
      budget = practical_c * n * std::log2(n + 2.0) * std::log2(2.0 / eps);
      break;
    }
    case BudgetMode::kExplicit:
      // Explicit budgets are taken literally (space-sweep experiments need
      // budgets below n); the theory modes are floored at n.
      return explicit_budget;
  }
  budget = std::max(budget, n);
  if (budget >= 1e18) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(budget);
}

}  // namespace covstream
