#include "core/setcover_outliers.hpp"

#include <algorithm>
#include <cmath>

#include "core/sketch_ladder.hpp"

namespace covstream {

OutliersPlan plan_outliers(SetId num_sets, const OutliersOptions& options) {
  const double eps = options.stream.eps;
  const double lambda = options.lambda;
  COVSTREAM_CHECK(eps > 0.0 && eps <= 1.0);
  COVSTREAM_CHECK(lambda > 0.0 && lambda <= 1.0 / std::exp(1.0));

  OutliersPlan plan;
  // Algorithm 5 line 1.
  plan.eps_prime = lambda * (1.0 - std::exp(-eps / 2.0));
  plan.lambda_prime = lambda * std::exp(-eps / 2.0);
  const double ladder_len =
      std::log(std::max<double>(2.0, num_sets)) / std::log1p(eps / 3.0);
  const double c_prime = std::max(1.0, options.c_confidence * ladder_len);
  // Algorithm 4 line 1: delta'' = log_{1+eps} n * (log(C'n) + 2).
  plan.delta_pp = std::max(
      1.0, (std::log(std::max<double>(2.0, num_sets)) / std::log1p(eps)) *
               (std::log(c_prime * std::max<double>(2.0, num_sets)) + 2.0));

  // Geometric guesses k' = growth^i clipped to [1, n], deduplicated after
  // rounding. Paper growth: 1 + eps/3.
  const double growth =
      options.guess_growth > 1.0 ? options.guess_growth : 1.0 + eps / 3.0;
  double k_prime = 1.0;
  std::uint32_t last = 0;
  while (true) {
    const std::uint32_t k = static_cast<std::uint32_t>(
        std::min<double>(num_sets, std::ceil(k_prime)));
    if (k != last) {
      plan.guesses.push_back(
          SubmoduleParams::derive(k, plan.eps_prime, plan.lambda_prime));
      last = k;
    }
    if (k >= num_sets) break;
    k_prime *= growth;
  }
  return plan;
}

OutliersResult streaming_setcover_outliers(EdgeStream& stream, SetId num_sets,
                                           const OutliersOptions& options) {
  const OutliersPlan plan = plan_outliers(num_sets, options);

  std::vector<SketchParams> rung_params;
  rung_params.reserve(plan.guesses.size());
  for (const SubmoduleParams& sub : plan.guesses) {
    rung_params.push_back(
        submodule_sketch_params(num_sets, sub, options.stream, plan.delta_pp));
  }
  SketchLadder ladder(std::move(rung_params), options.pool);
  // The single shared pass, batched through the engine.
  ladder.consume(stream, {}, options.stream.batch_edges);

  OutliersResult result;
  result.ladder_rungs = plan.guesses.size();
  result.space_words = ladder.peak_space_words();
  result.passes = stream.passes_started();
  for (std::size_t i = 0; i < plan.guesses.size(); ++i) {
    const SubmoduleResult sub =
        setcover_submodule_evaluate(ladder.rung(i), plan.guesses[i], options.pool);
    if (sub.feasible) {
      result.feasible = true;
      result.solution = sub.solution;
      result.accepted_k_prime = plan.guesses[i].k_prime;
      result.sketch_cover_fraction = sub.sketch_cover_fraction;
      break;
    }
  }
  return result;
}

}  // namespace covstream
