// Appendix A / Theorem 1.3: black-box access to a (1 +- eps)-approximate
// coverage oracle is NOT enough to approximate k-cover — in contrast to the
// H<=n sketch, which exposes structure, not just values.
//
// The construction: n items, a hidden uniformly-random gold subset of size k.
// The implied coverage instance has C(S) = k + (n/k) * Gold(S) for nonempty S
// (k shared elements + n/k exclusive elements per gold set), so Opt_k = k+n.
// The adversarial oracle answers k + |S| whenever the gold count of S is
// within the Pure_eps dead zone — which, by concentration, is almost every
// query — and only reveals C(S) on the exponentially-rare "impure" queries.
//
// The bench (appendixA_oracle) runs natural attack strategies against this
// oracle and shows their achieved ratio pinned near the trivial 4k/n until
// the query count explodes, reproducing the theorem's shape.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace covstream {

class PurificationInstance {
 public:
  /// n items, k hidden gold ones (uniform without replacement), dead-zone eps.
  static PurificationInstance make(std::uint32_t n, std::uint32_t k, double eps,
                                   std::uint64_t seed);

  std::uint32_t n() const { return n_; }
  std::uint32_t k() const { return k_; }
  double eps() const { return eps_; }

  std::size_t gold_count(std::span<const std::uint32_t> items) const;

  /// Pure_eps(S): 1 iff Gold(S) escapes the concentration dead zone
  /// [k|S|/n - eps(k|S|/n + k^2/n), k|S|/n + eps(k|S|/n + k^2/n)].
  bool pure(std::span<const std::uint32_t> items) const;

  bool is_gold(std::uint32_t item) const { return gold_[item]; }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t k_ = 0;
  double eps_ = 0.0;
  std::vector<bool> gold_;
};

/// The (1 +- 2eps)-approximate oracle C_eps' built from Pure_eps (Appendix A
/// proof of Theorem 1.3). Query counting included.
class NoisyCoverageOracle {
 public:
  explicit NoisyCoverageOracle(const PurificationInstance* instance)
      : instance_(instance) {}

  /// True coverage C(S) = k + (n/k) Gold(S) (0 for empty S).
  double true_coverage(std::span<const std::uint32_t> items) const;

  /// Oracle answer; increments the query counter.
  double query(std::span<const std::uint32_t> items);

  double opt() const;  // k + n

  std::size_t queries() const { return queries_; }
  std::size_t pure_hits() const { return pure_hits_; }

 private:
  const PurificationInstance* instance_;
  std::size_t queries_ = 0;
  std::size_t pure_hits_ = 0;  // queries where Pure_eps(S) = 1
};

struct AttackResult {
  double best_ratio = 0.0;  // best C(S)/Opt over size-k sets committed to
  std::size_t queries = 0;
  std::size_t pure_hits = 0;
};

/// Repeatedly samples uniform size-k subsets and keeps the best oracle value.
AttackResult attack_random_subsets(const PurificationInstance& instance,
                                   std::size_t max_queries, std::uint64_t seed);

/// Greedy through the oracle: grows the set item-by-item by best oracle
/// marginal (Theorem 1.3's target: the oracle value is flat, so this learns
/// nothing and lands on an essentially random set).
AttackResult attack_greedy_oracle(const PurificationInstance& instance,
                                  std::uint64_t seed);

}  // namespace covstream
