// Algorithm 4 / Lemma 3.2: the feasibility submodule for set cover.
//
// Given a guess k' for the minimum set-cover size, a sketch tuned for
// k = k' * log(1/lambda') is built over the stream; greedy then tries to pick
// k' * log(1/lambda') sets covering a (1 - lambda' - eps*log(1/lambda'))
// fraction of the sketch's elements. Failure certifies (w.h.p.) that no set
// cover of size k' exists; success yields a small family covering almost
// everything.
//
// The sketch-building pass is shared across guesses by Algorithm 5, so this
// module exposes the parameter derivation and the post-pass evaluation
// separately.
#pragma once

#include <cstdint>
#include <vector>

#include "core/greedy_on_sketch.hpp"
#include "core/streaming_kcover.hpp"
#include "core/subsample_sketch.hpp"
#include "util/common.hpp"

namespace covstream {

struct SubmoduleParams {
  std::uint32_t k_prime = 1;    // guessed cover size
  double lambda_prime = 0.1;    // residual-outlier target, in (0, 1/e]
  double eps_inner = 0.01;      // the submodule's eps (paper: eps'/(13 log(1/lambda')))
  std::uint32_t budget_sets = 1;  // k' * ceil(log(1/lambda')): greedy's set budget

  /// Derives the paper's parameters from (k', eps', lambda', C') — the
  /// Algorithm 4 preamble. delta'' is folded into `options` by the caller.
  static SubmoduleParams derive(std::uint32_t k_prime, double eps_prime,
                                double lambda_prime);

  /// Fraction of sketch elements greedy must cover to declare feasibility.
  double acceptance_fraction() const;
};

struct SubmoduleResult {
  bool feasible = false;            // "returned false" when !feasible
  std::vector<SetId> solution;      // <= budget_sets sets
  double sketch_cover_fraction = 0; // achieved on the sketch
};

/// SketchParams for the sketch this submodule needs (k = budget_sets).
SketchParams submodule_sketch_params(SetId num_sets, const SubmoduleParams& sub,
                                     const StreamingOptions& options,
                                     double delta_pp);

/// Post-pass evaluation: greedy on the already-built sketch (through the
/// shared solver engine, DESIGN.md §5.10) + the coverage test of Algorithm 4
/// lines 4-7. `pool` (nullable) parallelizes large decrement sweeps; the
/// solution is identical either way.
SubmoduleResult setcover_submodule_evaluate(const SubsampleSketch& sketch,
                                            const SubmoduleParams& sub,
                                            ThreadPool* pool = nullptr);

}  // namespace covstream
