// Appendix E / Theorem 1.2: any (1/2 + eps)-approximate streaming k-cover
// algorithm needs Omega(n) space, via reduction from set disjointness.
//
// We realize the reduction empirically: DISJ inputs become 1-cover streams
// (workloads/make_disjointness), and two budgeted one-pass deciders try to
// distinguish Opt_1 = 2 (intersecting) from Opt_1 = 1 (disjoint):
//  * sketch_decides_intersection — the H<=n sketch with an explicit edge
//    budget; below ~deg(a)+deg(b) = Theta(n) edges it can never see both
//    elements and degrades to guessing on intersecting inputs.
//  * reservoir_decides_intersection — a uniform b-edge reservoir; its error
//    decays smoothly as b approaches n, tracing the Omega(n) threshold.
#pragma once

#include <cstdint>

#include "workloads/generators.hpp"

namespace covstream {

/// True = "predicts the sets intersect" (Opt_1 = 2).
bool sketch_decides_intersection(const DisjointnessInstance& instance,
                                 std::size_t edge_budget, std::uint64_t seed);

bool reservoir_decides_intersection(const DisjointnessInstance& instance,
                                    std::size_t edge_budget, std::uint64_t seed);

struct DisjointnessErrors {
  double sketch_error = 0.0;     // fraction of trials misclassified
  double reservoir_error = 0.0;
  std::size_t trials = 0;
};

/// Balanced trials (half intersecting, half disjoint) at one budget.
DisjointnessErrors disjointness_error_rate(std::uint32_t bits, double density,
                                           std::size_t edge_budget,
                                           std::size_t trials, std::uint64_t seed);

}  // namespace covstream
