// Workload generators (DESIGN.md §2.1): synthetic instance families with
// *known optima* wherever possible, so benches measure true approximation
// ratios rather than ratios against another heuristic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/coverage_instance.hpp"
#include "util/common.hpp"

namespace covstream {

/// A generated instance together with whatever ground truth the construction
/// guarantees.
struct GeneratedInstance {
  CoverageInstance graph;
  std::string family;

  /// Exact Opt_k for the k the instance was planted for (planted families).
  std::optional<std::size_t> opt_kcover;
  std::optional<std::uint32_t> planted_k;
  std::vector<SetId> opt_kcover_solution;

  /// Exact minimum set-cover size (planted set-cover families).
  std::optional<std::uint32_t> opt_setcover;
};

/// Uniform random bipartite instance: each of `num_sets` sets draws
/// `set_size` elements uniformly from [0, num_elems) (duplicates collapse).
GeneratedInstance make_uniform(SetId num_sets, ElemId num_elems, std::size_t set_size,
                               std::uint64_t seed);

/// Skewed instance: set sizes follow Zipf(alpha_sets) scaled to
/// [min_size, max_size]; element popularity follows Zipf(alpha_elems), so a
/// few elements appear in a large fraction of the sets. This is the family
/// that exercises the degree cap of H'p.
GeneratedInstance make_zipf(SetId num_sets, ElemId num_elems, std::size_t min_size,
                            std::size_t max_size, double alpha_sets,
                            double alpha_elems, std::uint64_t seed);

/// Planted max-k-cover with known OPT: k planted sets cover disjoint blocks
/// of `block_size` fresh elements each; the remaining sets are decoys, each a
/// random subset (at most `decoy_fraction` of a block) of a single planted
/// block. Opt_k = k * block_size, achieved only by the planted sets.
GeneratedInstance make_planted_kcover(SetId num_sets, std::uint32_t k,
                                      std::size_t block_size, double decoy_fraction,
                                      std::uint64_t seed);

/// Planted set cover with known OPT: the ground set is partitioned into
/// k_star blocks, one planted set per block; decoys are strict partial
/// subsets of single blocks. Since blocks are disjoint and every set touches
/// exactly one block, any cover needs >= k_star sets; the planted family
/// achieves it.
GeneratedInstance make_planted_setcover(SetId num_sets, std::uint32_t k_star,
                                        std::size_t block_size, double decoy_fraction,
                                        std::uint64_t seed);

/// Overlapping-community instance (data-summarization flavor): `communities`
/// element clusters; each set samples mostly within its home community with
/// `cross_fraction` of its elements drawn globally.
GeneratedInstance make_communities(SetId num_sets, ElemId num_elems,
                                   std::uint32_t communities, std::size_t set_size,
                                   double cross_fraction, std::uint64_t seed);

/// The Appendix E lower-bound gadget: a 1-cover instance derived from a
/// set-disjointness input (A, B subsets of [bits]). Two elements {0, 1};
/// set i covers element 0 iff i is in A and element 1 iff i is in B.
/// Opt_1 = 2 iff A and B intersect, else 1.
struct DisjointnessInstance {
  CoverageInstance graph;
  std::vector<Edge> alice_then_bob_stream;  // Alice's edges before Bob's
  bool intersecting = false;
};
DisjointnessInstance make_disjointness(std::uint32_t bits, bool intersecting,
                                       double density, std::uint64_t seed);

}  // namespace covstream
