#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace covstream {
namespace {

// Draws `count` distinct elements from [0, universe) into `out`.
void sample_distinct(Rng& rng, ElemId universe, std::size_t count,
                     std::vector<ElemId>& out) {
  out.clear();
  COVSTREAM_CHECK(static_cast<ElemId>(count) <= universe);
  if (count * 3 >= universe) {
    // Dense draw: shuffle a prefix.
    std::vector<ElemId> all(universe);
    for (ElemId e = 0; e < universe; ++e) all[e] = e;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + rng.next_below(static_cast<std::uint64_t>(universe - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    while (out.size() < count) {
      const ElemId candidate = rng.next_below(static_cast<std::uint64_t>(universe));
      if (std::find(out.begin(), out.end(), candidate) == out.end()) {
        out.push_back(candidate);
      }
    }
  }
}

}  // namespace

GeneratedInstance make_uniform(SetId num_sets, ElemId num_elems, std::size_t set_size,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_sets) * set_size);
  for (SetId s = 0; s < num_sets; ++s) {
    for (std::size_t i = 0; i < set_size; ++i) {
      edges.push_back({s, rng.next_below(static_cast<std::uint64_t>(num_elems))});
    }
  }
  GeneratedInstance out;
  out.graph = CoverageInstance::from_edges(num_sets, num_elems, std::move(edges));
  out.family = "uniform";
  return out;
}

GeneratedInstance make_zipf(SetId num_sets, ElemId num_elems, std::size_t min_size,
                            std::size_t max_size, double alpha_sets,
                            double alpha_elems, std::uint64_t seed) {
  COVSTREAM_CHECK(min_size >= 1 && min_size <= max_size);
  Rng rng(seed);
  const ZipfSampler size_sampler(max_size - min_size + 1, alpha_sets);
  const ZipfSampler elem_sampler(static_cast<std::size_t>(num_elems), alpha_elems);
  // Random relabeling so that "popular" element ids are spread over [0, m)
  // rather than clustered at small ids.
  std::vector<ElemId> relabel(num_elems);
  for (ElemId e = 0; e < num_elems; ++e) relabel[e] = e;
  rng.shuffle(relabel);

  std::vector<Edge> edges;
  for (SetId s = 0; s < num_sets; ++s) {
    const std::size_t size = min_size + size_sampler.sample(rng);
    for (std::size_t i = 0; i < size; ++i) {
      edges.push_back({s, relabel[elem_sampler.sample(rng)]});
    }
  }
  GeneratedInstance out;
  out.graph = CoverageInstance::from_edges(num_sets, num_elems, std::move(edges));
  out.family = "zipf";
  return out;
}

GeneratedInstance make_planted_kcover(SetId num_sets, std::uint32_t k,
                                      std::size_t block_size, double decoy_fraction,
                                      std::uint64_t seed) {
  COVSTREAM_CHECK(k >= 1 && k <= num_sets);
  COVSTREAM_CHECK(block_size >= 2);
  COVSTREAM_CHECK(decoy_fraction > 0.0 && decoy_fraction < 1.0);
  Rng rng(seed);
  const ElemId num_elems = static_cast<ElemId>(k) * block_size;
  std::vector<Edge> edges;

  // Planted sets 0..k-1: disjoint blocks. (Set ids are shuffled afterwards so
  // algorithms cannot exploit id order.)
  for (std::uint32_t b = 0; b < k; ++b) {
    for (std::size_t i = 0; i < block_size; ++i) {
      edges.push_back({b, static_cast<ElemId>(b) * block_size + i});
    }
  }
  // Decoys: random subsets of single blocks, each at most decoy_fraction of a
  // block. Any family of k sets containing a decoy covers strictly less than
  // k * block_size, so Opt_k = k * block_size with the planted family as the
  // unique maximizer (up to ties among decoy choices below optimum).
  const std::size_t max_decoy =
      std::max<std::size_t>(1, static_cast<std::size_t>(decoy_fraction * block_size));
  std::vector<ElemId> scratch;
  for (SetId s = k; s < num_sets; ++s) {
    const std::uint32_t block = rng.next_below(k);
    const std::size_t size = 1 + rng.next_below(static_cast<std::uint64_t>(max_decoy));
    sample_distinct(rng, static_cast<ElemId>(block_size), size, scratch);
    for (const ElemId offset : scratch) {
      edges.push_back({s, static_cast<ElemId>(block) * block_size + offset});
    }
  }

  // Shuffle set identities.
  std::vector<std::uint32_t> relabel = rng.permutation(num_sets);
  for (Edge& edge : edges) edge.set = relabel[edge.set];

  GeneratedInstance out;
  out.graph = CoverageInstance::from_edges(num_sets, num_elems, std::move(edges));
  out.family = "planted-kcover";
  out.opt_kcover = static_cast<std::size_t>(k) * block_size;
  out.planted_k = k;
  out.opt_kcover_solution.reserve(k);
  for (std::uint32_t b = 0; b < k; ++b) out.opt_kcover_solution.push_back(relabel[b]);
  return out;
}

GeneratedInstance make_planted_setcover(SetId num_sets, std::uint32_t k_star,
                                        std::size_t block_size, double decoy_fraction,
                                        std::uint64_t seed) {
  COVSTREAM_CHECK(k_star >= 1 && k_star <= num_sets);
  COVSTREAM_CHECK(block_size >= 2);
  COVSTREAM_CHECK(decoy_fraction > 0.0 && decoy_fraction < 1.0);
  Rng rng(seed);
  const ElemId num_elems = static_cast<ElemId>(k_star) * block_size;
  std::vector<Edge> edges;
  for (std::uint32_t b = 0; b < k_star; ++b) {
    for (std::size_t i = 0; i < block_size; ++i) {
      edges.push_back({b, static_cast<ElemId>(b) * block_size + i});
    }
  }
  const std::size_t max_decoy =
      std::max<std::size_t>(1, static_cast<std::size_t>(decoy_fraction * block_size));
  std::vector<ElemId> scratch;
  for (SetId s = k_star; s < num_sets; ++s) {
    const std::uint32_t block = rng.next_below(k_star);
    const std::size_t size = 1 + rng.next_below(static_cast<std::uint64_t>(max_decoy));
    sample_distinct(rng, static_cast<ElemId>(block_size), size, scratch);
    for (const ElemId offset : scratch) {
      edges.push_back({s, static_cast<ElemId>(block) * block_size + offset});
    }
  }
  std::vector<std::uint32_t> relabel = rng.permutation(num_sets);
  for (Edge& edge : edges) edge.set = relabel[edge.set];

  GeneratedInstance out;
  out.graph = CoverageInstance::from_edges(num_sets, num_elems, std::move(edges));
  out.family = "planted-setcover";
  out.opt_setcover = k_star;
  return out;
}

GeneratedInstance make_communities(SetId num_sets, ElemId num_elems,
                                   std::uint32_t communities, std::size_t set_size,
                                   double cross_fraction, std::uint64_t seed) {
  COVSTREAM_CHECK(communities >= 1);
  COVSTREAM_CHECK(cross_fraction >= 0.0 && cross_fraction <= 1.0);
  Rng rng(seed);
  const ElemId community_span = num_elems / communities;
  COVSTREAM_CHECK(community_span >= 1);
  std::vector<Edge> edges;
  for (SetId s = 0; s < num_sets; ++s) {
    const std::uint32_t home = rng.next_below(communities);
    const ElemId base = static_cast<ElemId>(home) * community_span;
    for (std::size_t i = 0; i < set_size; ++i) {
      if (rng.next_bool(cross_fraction)) {
        edges.push_back({s, rng.next_below(static_cast<std::uint64_t>(num_elems))});
      } else {
        edges.push_back(
            {s, base + rng.next_below(static_cast<std::uint64_t>(community_span))});
      }
    }
  }
  GeneratedInstance out;
  out.graph = CoverageInstance::from_edges(num_sets, num_elems, std::move(edges));
  out.family = "communities";
  return out;
}

DisjointnessInstance make_disjointness(std::uint32_t bits, bool intersecting,
                                       double density, std::uint64_t seed) {
  COVSTREAM_CHECK(bits >= 2);
  COVSTREAM_CHECK(density > 0.0 && density <= 1.0);
  Rng rng(seed);
  // Draw A and B with the requested intersection pattern. To make the
  // distinguishing task information-theoretically about all n bits, each
  // index lands in A and/or B independently; for the disjoint case any index
  // that would land in both is assigned to one side at random.
  // The classic hard distribution: A and B are (near-)disjoint random sets,
  // and the intersecting case differs by exactly ONE planted witness index —
  // so distinguishing the cases requires essentially full information about
  // the stream, not just a lucky sample.
  std::vector<bool> in_a(bits, false), in_b(bits, false);
  for (std::uint32_t i = 0; i < bits; ++i) {
    const bool a = rng.next_bool(density);
    const bool b = rng.next_bool(density);
    if (a && b) {
      if (rng.next_bool(0.5)) {
        in_a[i] = true;
      } else {
        in_b[i] = true;
      }
    } else {
      in_a[i] = a;
      in_b[i] = b;
    }
  }
  if (intersecting) {
    const std::uint32_t shared = rng.next_below(bits);
    in_a[shared] = in_b[shared] = true;
  }
  // Guarantee no isolated side (at least one edge each) so Opt_1 >= 1.
  if (std::find(in_a.begin(), in_a.end(), true) == in_a.end()) {
    in_a[rng.next_below(bits)] = true;
  }
  if (std::find(in_b.begin(), in_b.end(), true) == in_b.end()) {
    const std::uint32_t idx = rng.next_below(bits);
    in_b[idx] = true;
    if (!intersecting) in_a[idx] = false;
  }

  DisjointnessInstance out;
  out.intersecting = false;
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < bits; ++i) {
    if (in_a[i]) out.alice_then_bob_stream.push_back({i, 0});
    if (in_a[i] && in_b[i]) out.intersecting = true;
  }
  for (std::uint32_t i = 0; i < bits; ++i) {
    if (in_b[i]) out.alice_then_bob_stream.push_back({i, 1});
  }
  COVSTREAM_CHECK(out.intersecting == intersecting);
  out.graph = CoverageInstance::from_edges(bits, 2, out.alice_then_bob_stream);
  return out;
}

}  // namespace covstream
