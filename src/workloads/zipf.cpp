#include "workloads/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace covstream {

ZipfSampler::ZipfSampler(std::size_t support, double alpha) : alpha_(alpha) {
  COVSTREAM_CHECK(support > 0);
  cdf_.resize(support);
  double total = 0.0;
  for (std::size_t i = 0; i < support; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_unit();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  COVSTREAM_CHECK(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace covstream
