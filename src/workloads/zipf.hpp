// Zipf (power-law) sampling over {0, ..., support-1} with exponent `alpha`:
// P(i) proportional to 1/(i+1)^alpha. Used to generate skewed element
// popularity (high-degree elements are exactly what the sketch's degree cap
// H'p exists for) and heavy-tailed set sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace covstream {

class ZipfSampler {
 public:
  ZipfSampler(std::size_t support, double alpha);

  std::size_t support() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

  /// Draws one sample in [0, support).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of value i.
  double pmf(std::size_t i) const;

 private:
  double alpha_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace covstream
