#include "util/space_meter.hpp"

#include <cstdio>

namespace covstream {

std::string format_words(std::size_t words) {
  char buffer[64];
  const double w = static_cast<double>(words);
  if (words >= 10'000'000) {
    std::snprintf(buffer, sizeof buffer, "%.1f Mw", w / 1e6);
  } else if (words >= 10'000) {
    std::snprintf(buffer, sizeof buffer, "%.1f Kw", w / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%zu w", words);
  }
  return buffer;
}

}  // namespace covstream
