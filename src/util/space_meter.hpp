// Analytic space accounting (DESIGN.md §5.2).
//
// Streaming algorithms report their state size in 8-byte words; SpaceMeter
// tracks the running and peak totals. This is what reproduces the "Space"
// column of Table 1: RSS would be dominated by the workload generator rather
// than by algorithm state.
//
// Since the flat-substrate refactor (DESIGN.md §5.6), sketches measure their
// actual container footprints rather than a per-entry model; the helpers
// below define the word costs of the substrate's packed layouts so every
// space_words() implementation agrees on the arithmetic.
#pragma once

#include <cstddef>
#include <string>

namespace covstream {

/// Words for `n` 4-byte values (SetId slabs, slot indices) packed 2 per word.
constexpr std::size_t words_for_u32(std::size_t n) { return (n + 1) / 2; }

/// Words for `n` open-addressing buckets (8-byte ElemId + 4-byte slot).
constexpr std::size_t words_for_buckets(std::size_t n) { return (n * 3 + 1) / 2; }

class SpaceMeter {
 public:
  /// Adds `words` to the current footprint.
  void allocate(std::size_t words) {
    current_ += words;
    if (current_ > peak_) peak_ = current_;
  }

  /// Removes `words` from the current footprint.
  void release(std::size_t words) {
    words = words > current_ ? current_ : words;
    current_ -= words;
  }

  /// Replaces the current footprint (convenient for structures that recompute
  /// their size wholesale).
  void set_current(std::size_t words) {
    current_ = words;
    if (current_ > peak_) peak_ = current_;
  }

  std::size_t current_words() const { return current_; }
  std::size_t peak_words() const { return peak_; }

  void reset() { current_ = peak_ = 0; }

  /// Merge another meter's peak as if it ran concurrently with this one.
  void absorb_concurrent(const SpaceMeter& other) {
    current_ += other.current_;
    peak_ += other.peak_;
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// Human-readable "12.3 Kw" / "4.5 Mw" rendering of a word count.
std::string format_words(std::size_t words);

}  // namespace covstream
