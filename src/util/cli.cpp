#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/common.hpp"

namespace covstream {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "?";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: expected --key=value, got '%s'\n", program_.c_str(),
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare --flag means boolean true
      consumed_[arg] = false;
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      consumed_[arg.substr(0, eq)] = false;
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

std::size_t CliArgs::get_size(const std::string& key, std::size_t fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return static_cast<std::size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

bool CliArgs::get_bool(const std::string& key, bool fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void CliArgs::finish() const {
  bool bad = false;
  for (const auto& [key, used] : consumed_) {
    if (!used) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(), key.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace covstream
