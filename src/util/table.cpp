#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/common.hpp"

namespace covstream {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  COVSTREAM_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  COVSTREAM_CHECK(!rows_.empty());
  COVSTREAM_CHECK(rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return cell(std::string(buffer));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < cells.size() ? cells[c] : std::string();
      out += "  ";
      out += value;
      out.append(widths[c] - value.size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  append_row(out, headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& header : headers_) out += " " + header + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += " " + (c < row.size() ? row[c] : std::string()) + " |";
    }
    out += '\n';
  }
  return out;
}

void Table::print(const std::string& title) const {
  std::printf("== %s ==\n%s\n", title.c_str(), to_text().c_str());
  std::fflush(stdout);
}

}  // namespace covstream
