// Dynamic bit vector tuned for coverage bookkeeping: set/test, popcount,
// union/intersection in bulk, and "count newly set bits" which is the inner
// loop of every greedy coverage algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace covstream {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  std::size_t size() const { return bits_; }
  std::size_t word_count() const { return words_.size(); }

  bool test(std::size_t i) const {
    COVSTREAM_CHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) {
    COVSTREAM_CHECK(i < bits_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  /// Sets bit i; returns true iff it was previously clear.
  bool set_if_clear(std::size_t i) {
    COVSTREAM_CHECK(i < bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t& word = words_[i >> 6];
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  void reset(std::size_t i) {
    COVSTREAM_CHECK(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear() {
    for (auto& word : words_) word = 0;
  }

  std::size_t count() const;

  /// *this |= other. Sizes must match.
  void or_with(const BitVec& other);

  /// Number of bits set in `other` but not in *this (the coverage gain of
  /// adding `other` on top of *this).
  std::size_t count_and_not(const BitVec& other) const;

  /// Popcount of the union *this | other without materializing it.
  std::size_t count_or(const BitVec& other) const;

  bool operator==(const BitVec& other) const = default;

  /// Space in 8-byte words (for SpaceMeter accounting).
  std::size_t space_words() const { return words_.size(); }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace covstream
