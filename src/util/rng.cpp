#include "util/rng.hpp"

namespace covstream {

std::vector<std::uint64_t> Rng::split(std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(next());
  return seeds;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t size) {
  std::vector<std::uint32_t> perm(size);
  for (std::uint32_t i = 0; i < size; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t universe,
                                                           std::uint32_t count) {
  COVSTREAM_CHECK(count <= universe);
  // Floyd's algorithm: O(count) expected time, O(count) space.
  std::vector<std::uint32_t> result;
  result.reserve(count);
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(count * 2);
  for (std::uint32_t j = universe - count; j < universe; ++j) {
    const std::uint32_t t = next_below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace covstream
