// Tiny --key=value flag parser shared by benches and examples.
//
//   CliArgs args(argc, argv);
//   const std::size_t n = args.get_size("n", 1000);
//   const double eps = args.get_double("eps", 0.1);
//   args.finish();  // aborts on unrecognized flags (catches typos)
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace covstream {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  std::size_t get_size(const std::string& key, std::size_t fallback);
  bool get_bool(const std::string& key, bool fallback);

  /// Aborts with a message listing any flags that were passed but never read.
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::string program_;
};

}  // namespace covstream
