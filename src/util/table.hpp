// Console table rendering for the bench harness. Produces both an aligned
// plain-text table (default) and GitHub-flavored markdown, so bench output
// can be pasted straight into EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace covstream {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }

  std::size_t row_count() const { return rows_.size(); }

  std::string to_text() const;
  std::string to_markdown() const;

  /// Prints to stdout: a title line, the text table, and a blank line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace covstream
