#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/common.hpp"

namespace covstream {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderror() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

std::string RunningStat::summary(int precision) const {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%.*f ± %.*f", precision, mean(), precision,
                stderror());
  return buffer;
}

double quantile(std::vector<double> values, double q) {
  COVSTREAM_CHECK(!values.empty());
  COVSTREAM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  COVSTREAM_CHECK(xs.size() == ys.size());
  COVSTREAM_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys) {
  COVSTREAM_CHECK(xs.size() == ys.size());
  COVSTREAM_CHECK(xs.size() >= 2);
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    COVSTREAM_CHECK(xs[i] > 0.0 && ys[i] > 0.0);
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  const double n = static_cast<double>(lx.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
  }
  const double denom = sxx - sx * sx / n;
  COVSTREAM_CHECK(denom > 0.0);
  return (sxy - sx * sy / n) / denom;
}

}  // namespace covstream
