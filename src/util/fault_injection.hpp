// Failpoint layer for crash-consistency and error-path testing
// (DESIGN.md §5.13).
//
// Durability claims are only as good as the crash points they were tested
// at, so the snapshot/spill write path is threaded with named fault sites
// (snapshot.open, snapshot.write, snapshot.fsync, snapshot.rename,
// snapshot.dirsync, net.dispatch). A site costs one relaxed atomic load when
// no faults are armed; when armed, each evaluation is counted and matched
// against the configured rules, so a test — or tools/crash_smoke.py over the
// wire — can fail exactly the Nth write, return ENOSPC forever, or kill the
// process at a chosen write boundary and assert the reboot recovers.
//
// Spec grammar (COVSTREAM_FAILPOINTS env var or configure()):
//
//   spec  := rule (',' rule)*
//   rule  := site '=' action ['@' N] ['+']
//   action:= 'fail' | 'enospc' | 'short' | 'abort' | 'sleep' <ms>
//
// A rule fires on the Nth evaluation of its site (N defaults to 1); with a
// trailing '+' it fires on every evaluation from the Nth on (sticky — how an
// ENOSPC disk behaves). Actions: `fail` injects a generic I/O error (EIO),
// `enospc` injects ENOSPC, `short` asks the site to perform a partial write
// then fail, `abort` kills the process on the spot with _Exit (no atexit, no
// stdio flush — a genuine torn-state crash, exit code 42), and `sleep<ms>`
// stalls the site (deterministic slow-request testing).
//
// The injector is process-wide and thread-safe. The `fault` protocol command
// only works when COVSTREAM_FAILPOINTS was present in the environment at
// startup (even empty), so a production server cannot be fault-armed over
// the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace covstream {

enum class FaultAction : std::uint8_t {
  kNone = 0,
  kFail,   // report failure with an injected errno
  kShort,  // perform a partial write, then report failure
};

/// What a fault site must do, as decided by evaluate(). `abort` and `sleep`
/// rules are executed inside evaluate() itself (the process dies / stalls),
/// so call sites only ever see kNone / kFail / kShort.
struct FaultHit {
  FaultAction action = FaultAction::kNone;
  int fault_errno = 0;  // EIO or ENOSPC when action != kNone
};

class FaultInjector {
 public:
  /// The process-wide injector. First call latches whether
  /// COVSTREAM_FAILPOINTS is present (admin_enabled) and arms any rules in
  /// it (a malformed env spec warns to stderr and arms nothing).
  static FaultInjector& instance();

  /// Replaces all rules with `spec` (see grammar above). Empty spec ==
  /// clear(). False + *error on a malformed spec (rules unchanged).
  bool configure(std::string_view spec, std::string* error = nullptr);

  /// Disarms every rule and resets all hit counters.
  void clear();

  /// True when COVSTREAM_FAILPOINTS was set at startup — the gate for the
  /// wire-level `fault` command.
  bool admin_enabled() const { return admin_enabled_; }

  /// True when any rule is armed (relaxed; the fast path's only cost).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts one evaluation of `site` and returns the action to take. May
  /// not return: an `abort` rule calls _Exit(42) here, a `sleep` rule
  /// stalls here.
  FaultHit evaluate(const char* site);

  /// How many times `site` has been evaluated since the last configure()/
  /// clear() (only counted while armed).
  std::uint64_t hits(std::string_view site) const;

 private:
  FaultInjector();

  struct Rule {
    std::string site;
    FaultAction action = FaultAction::kNone;
    int fault_errno = 0;       // errno to inject when action != kNone
    bool abort = false;
    std::uint32_t sleep_ms = 0;
    std::uint64_t nth = 1;     // fire on the nth evaluation...
    bool sticky = false;       // ...and every one after, with '+'
    std::uint64_t count = 0;   // evaluations of this site so far
  };

  bool admin_enabled_ = false;
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
};

}  // namespace covstream
