#include "util/fault_injection.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace covstream {

namespace {

bool parse_u64_digits(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("COVSTREAM_FAILPOINTS");
  admin_enabled_ = env != nullptr;
  if (env != nullptr && env[0] != '\0') {
    std::string error;
    if (!configure(env, &error)) {
      std::fprintf(stderr, "fault injection: bad COVSTREAM_FAILPOINTS: %s\n",
                   error.c_str());
    }
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::configure(std::string_view spec, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::vector<Rule> rules;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view text = spec.substr(at, end - at);
    at = end + 1;
    if (text.empty()) continue;
    const std::size_t eq = text.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail("rule '" + std::string(text) + "' is not site=action");
    }
    Rule rule;
    rule.site = std::string(text.substr(0, eq));
    std::string_view action = text.substr(eq + 1);
    if (!action.empty() && action.back() == '+') {
      rule.sticky = true;
      action.remove_suffix(1);
    }
    const std::size_t amp = action.find('@');
    if (amp != std::string_view::npos) {
      if (!parse_u64_digits(action.substr(amp + 1), &rule.nth) ||
          rule.nth == 0) {
        return fail("rule '" + std::string(text) + "' has a bad @N");
      }
      action = action.substr(0, amp);
    }
    if (action == "fail") {
      rule.action = FaultAction::kFail;
      rule.fault_errno = EIO;
    } else if (action == "enospc") {
      rule.action = FaultAction::kFail;
      rule.fault_errno = ENOSPC;
    } else if (action == "short") {
      rule.action = FaultAction::kShort;
      rule.fault_errno = EIO;
    } else if (action == "abort") {
      rule.abort = true;
    } else if (action.substr(0, 5) == "sleep") {
      std::uint64_t ms = 0;
      if (!parse_u64_digits(action.substr(5), &ms) || ms > 600000) {
        return fail("rule '" + std::string(text) + "' has a bad sleep<ms>");
      }
      rule.sleep_ms = static_cast<std::uint32_t>(ms);
    } else {
      return fail("rule '" + std::string(text) +
                  "': action must be fail|enospc|short|abort|sleep<ms>");
    }
    rules.push_back(std::move(rule));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FaultHit FaultInjector::evaluate(const char* site) {
  FaultHit hit;
  if (!armed()) return hit;
  bool do_abort = false;
  std::uint32_t do_sleep_ms = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Rule& rule : rules_) {
      if (rule.site != site) continue;
      ++rule.count;
      const bool fires =
          rule.sticky ? rule.count >= rule.nth : rule.count == rule.nth;
      if (!fires) continue;
      if (rule.abort) {
        do_abort = true;
      } else if (rule.sleep_ms > 0) {
        do_sleep_ms = rule.sleep_ms;
      } else {
        hit.action = rule.action;
        hit.fault_errno = rule.fault_errno;
      }
      break;
    }
  }
  if (do_abort) {
    // A real crash, not an exit: skip atexit handlers and stdio flushing so
    // buffered-but-unwritten bytes are genuinely lost, like a power cut.
    std::fprintf(stderr, "fault injection: abort at %s\n", site);
    std::_Exit(42);
  }
  if (do_sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(do_sleep_ms));
  }
  return hit;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Rule& rule : rules_) {
    if (rule.site == site) total += rule.count;
  }
  return total;
}

}  // namespace covstream
