// Deterministic, seedable pseudo-random number generation.
//
// Rng wraps xoshiro256** seeded through SplitMix64, per the recommendation of
// its authors. Every randomized component in covstream takes an explicit
// 64-bit seed so that tests and benches are reproducible (DESIGN.md §5.4).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hash/hash64.hpp"
#include "util/common.hpp"

namespace covstream {

/// SplitMix64 step: golden-gamma increment + the canonical finalizer
/// (hash/hash64.hpp holds the one definition of the mixer constants).
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += kGoldenGamma;
  return splitmix64_mix(state);
}

/// xoshiro256** generator. Not cryptographic; plenty for sketching.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedc0de5eedc0deULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero. Uses rejection sampling
  /// against the largest multiple of `bound` to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    COVSTREAM_CHECK(bound != 0);
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound + 1) % bound;
    while (true) {
      const std::uint64_t x = next();
      if (x <= limit) return x % bound;
    }
  }

  std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next_below(static_cast<std::uint64_t>(bound)));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool next_bool(double probability_true) { return next_unit() < probability_true; }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(static_cast<std::uint64_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// `count` fresh independent seeds (for fanning out to sub-components).
  std::vector<std::uint64_t> split(std::size_t count);

  /// Random permutation of [0, size).
  std::vector<std::uint32_t> permutation(std::uint32_t size);

  /// `count` distinct values from [0, universe), unordered.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t universe,
                                                        std::uint32_t count);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace covstream
