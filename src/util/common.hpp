// Core shared definitions for covstream.
//
// Conventions (see DESIGN.md):
//  * SetId indexes the n sets, ElemId identifies elements. Element ids may be
//    arbitrary 64-bit values in the streaming algorithms (the universe is
//    unknown in the edge-arrival model); offline instances use dense ids.
//  * All sizes/counters use std::size_t or std::uint64_t.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace covstream {

using SetId = std::uint32_t;
using ElemId = std::uint64_t;

/// A single unit of the edge-arrival stream: "element `elem` belongs to set
/// `set`".
struct Edge {
  SetId set = 0;
  ElemId elem = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

constexpr SetId kInvalidSet = static_cast<SetId>(-1);
constexpr ElemId kInvalidElem = static_cast<ElemId>(-1);

[[noreturn]] inline void fatal(const char* file, int line, const char* what) {
  std::fprintf(stderr, "covstream fatal: %s:%d: %s\n", file, line, what);
  std::abort();
}

// Always-on invariant check (cheap checks only; heavy checks should be
// guarded by NDEBUG in the caller).
#define COVSTREAM_CHECK(cond)                                   \
  do {                                                          \
    if (!(cond)) ::covstream::fatal(__FILE__, __LINE__, #cond); \
  } while (false)

}  // namespace covstream
