#include "util/bitvec.hpp"

#include <bit>

namespace covstream {

std::size_t BitVec::count() const {
  std::size_t total = 0;
  for (const std::uint64_t word : words_) total += std::popcount(word);
  return total;
}

void BitVec::or_with(const BitVec& other) {
  COVSTREAM_CHECK(bits_ == other.bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

std::size_t BitVec::count_and_not(const BitVec& other) const {
  COVSTREAM_CHECK(bits_ == other.bits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += std::popcount(other.words_[w] & ~words_[w]);
  }
  return total;
}

std::size_t BitVec::count_or(const BitVec& other) const {
  COVSTREAM_CHECK(bits_ == other.bits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += std::popcount(words_[w] | other.words_[w]);
  }
  return total;
}

}  // namespace covstream
