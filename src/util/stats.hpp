// Streaming statistics helpers used by the bench harness: Welford running
// mean/variance, min/max, quantiles over a retained sample, and a small
// aggregate used to report "mean ± stderr over seeds".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace covstream {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double stderror() const;  // stddev / sqrt(n)
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// "mean ± stderr" rendered with the given precision.
  std::string summary(int precision = 3) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile over a stored sample (fine at bench scale).
double quantile(std::vector<double> values, double q);

/// Pearson correlation of two equally sized series.
double correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Least-squares slope of log(y) against log(x); used by benches to verify
/// scaling exponents (e.g. space ~ n^1.0, error ~ budget^-0.5).
double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace covstream
