// Minimal wall-clock timer for benches and examples.
#pragma once

#include <chrono>

namespace covstream {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double nanos() const { return seconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace covstream
