// Leveled stderr logging. Benches run with Info; tests default to Warn so
// ctest output stays readable. Not thread-safe beyond line atomicity.
#pragma once

#include <string>

namespace covstream {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

#define COVSTREAM_LOG(level, msg)                                      \
  do {                                                                 \
    if (static_cast<int>(level) >= static_cast<int>(::covstream::log_level())) \
      ::covstream::log_message(level, msg);                            \
  } while (false)

#define COVSTREAM_INFO(msg) COVSTREAM_LOG(::covstream::LogLevel::Info, msg)
#define COVSTREAM_WARN(msg) COVSTREAM_LOG(::covstream::LogLevel::Warn, msg)

}  // namespace covstream
